// MinHash sketches for Eq. 2.  The paper defines image similarity as the
// Jaccard similarity of two ORB descriptor *sets*; MinHash is the classic
// sublinear estimator for exactly that quantity.  A phone can upload a
// fixed-size sketch (k 64-bit minima, e.g. 512 B at k = 64) instead of the
// full descriptor payload, and the server can estimate max-similarity
// against its index without any descriptor matching — a further point on
// the paper's approximate-computing spectrum, evaluated in
// bench/ablation_minhash.
//
// Because two ORB descriptor sets never share bit-identical descriptors
// across photos, each descriptor is first quantized to a coarse token (its
// high-order bits under a fixed sampled mask) so that genuinely matching
// descriptors collide; the sketch then estimates Jaccard over token sets.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "features/keypoint.hpp"

namespace bees::idx {

struct MinHashParams {
  int hashes = 64;        ///< Sketch size k (one 64-bit minimum each).
  int token_bits = 32;    ///< Descriptor bits sampled into the token.
  std::uint64_t seed = 0x5ee7c0deULL;
};

/// A fixed-size MinHash sketch of one image's descriptor set.
struct MinHashSketch {
  std::vector<std::uint64_t> minima;

  std::size_t wire_bytes() const noexcept { return minima.size() * 8; }
};

/// Builds sketches under one fixed parameterization (the token mask and
/// hash salts are derived from the seed, so all sketches from one
/// MinHasher are comparable).
class MinHasher {
 public:
  explicit MinHasher(const MinHashParams& params = {});

  /// Sketches a descriptor set.  `ops` (if non-null) accumulates the
  /// hashing work (|descriptors| * k).
  MinHashSketch sketch(const std::vector<feat::Descriptor256>& descriptors,
                       std::uint64_t* ops = nullptr) const;

  /// Estimates the Jaccard similarity of the underlying token sets: the
  /// fraction of agreeing minima.  Unbiased for true Jaccard; stderr is
  /// sqrt(J(1-J)/k).
  double estimate_similarity(const MinHashSketch& a,
                             const MinHashSketch& b) const noexcept;

  /// Exact Jaccard over the token sets (the quantity the sketch
  /// estimates), for tests and the ablation.
  double exact_token_jaccard(
      const std::vector<feat::Descriptor256>& a,
      const std::vector<feat::Descriptor256>& b) const;

  int hashes() const noexcept { return params_.hashes; }

 private:
  std::uint64_t token_of(const feat::Descriptor256& d) const noexcept;

  MinHashParams params_;
  std::vector<int> token_positions_;   // sampled descriptor bit indices
  std::vector<std::uint64_t> salts_;   // one per hash function
};

}  // namespace bees::idx
