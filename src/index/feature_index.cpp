#include "index/feature_index.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "features/match_kernel.hpp"
#include "features/similarity.hpp"
#include "obs/timer.hpp"
#include "util/thread_pool.hpp"

namespace bees::idx {

namespace detail {

void finalize_top_k(QueryResult& result, int top_k) {
  std::sort(result.hits.begin(), result.hits.end(),
            [](const QueryHit& a, const QueryHit& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
  if (result.hits.size() > static_cast<std::size_t>(top_k)) {
    result.hits.resize(static_cast<std::size_t>(top_k));
  }
  if (!result.hits.empty()) {
    result.max_similarity = result.hits.front().similarity;
    result.best_id = result.hits.front().id;
  }
}

}  // namespace detail

namespace {

/// Resolves a rescore_threads setting: 0 means hardware concurrency.
std::size_t resolve_threads(int configured) {
  if (configured > 0) return static_cast<std::size_t>(configured);
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

/// Runs score(begin, end) over [0, n): through the pool when one is given,
/// inline otherwise.  The chunk partition is the pool's static split, so
/// per-slot outputs are identical either way.
template <typename ScoreChunk>
void for_each_chunk(std::size_t n, util::ThreadPool* pool,
                    ScoreChunk&& score) {
  if (pool != nullptr && n > 1) {
    pool->parallel_for_chunks(n, score);
  } else if (n > 0) {
    score(0, n);
  }
}

}  // namespace

std::size_t candidate_budget(const FeatureIndexParams& params,
                             double recall_target) {
  if (!params.ann.enabled) {
    return static_cast<std::size_t>(std::max(1, params.max_candidates));
  }
  return ann_shortlist_budget(params.max_candidates, recall_target);
}

FeatureIndex::FeatureIndex(const FeatureIndexParams& params)
    : params_(params), lsh_(params.lsh) {
  if (params_.ann.enabled) ann_.emplace(params_.ann);
}

util::ThreadPool* FeatureIndex::rescore_pool() const {
  const std::size_t threads = resolve_threads(params_.rescore_threads);
  if (threads <= 1) return nullptr;
  if (!pool_) pool_ = std::make_shared<util::ThreadPool>(threads);
  return pool_.get();
}

ImageId FeatureIndex::insert_entry(feat::BinaryFeatures features,
                                   const GeoTag& geo,
                                   const AnnFrontEnd::Row* row) {
  const auto id = static_cast<ImageId>(images_.size());
  if (params_.enable_descriptor_lsh) {
    for (const auto& d : features.descriptors) lsh_.insert(d, id);
  }
  if (ann_) {
    if (row != nullptr) {
      ann_->insert_row(id, *row);
    } else {
      ann_->insert(id, features.descriptors);
    }
  }
  descriptor_count_ += features.descriptors.size();
  wire_bytes_ += features.wire_bytes();
  images_.push_back({std::move(features), geo});
  return id;
}

ImageId FeatureIndex::insert(feat::BinaryFeatures features,
                             const GeoTag& geo) {
  return insert_entry(std::move(features), geo, nullptr);
}

ImageId FeatureIndex::insert_with_ann_row(feat::BinaryFeatures features,
                                          const GeoTag& geo,
                                          AnnFrontEnd::Row row) {
  return insert_entry(std::move(features), geo, &row);
}

QueryResult FeatureIndex::rescore(const feat::BinaryFeatures& query_features,
                                  const std::vector<ImageId>& candidates,
                                  int top_k) const {
  obs::ScopedTimer timer("cloud.query.rescore.seconds");
  QueryResult result;
  result.candidates_checked = candidates.size();
  const std::size_t n = candidates.size();
  // Per-candidate slots keep the parallel path deterministic: every chunk
  // writes disjoint slots, and the merge below walks them in candidate
  // order, so hits and `ops` match the serial path for any thread count.
  std::vector<double> sims(n, 0.0);
  std::vector<std::uint64_t> slot_ops(n, 0);
  for_each_chunk(n, rescore_pool(),
                 [&](std::size_t begin, std::size_t end) {
                   feat::MatchWorkspace workspace;
                   for (std::size_t i = begin; i < end; ++i) {
                     sims[i] = feat::jaccard_similarity(
                         query_features, images_[candidates[i]].features,
                         params_.match, &slot_ops[i], workspace);
                   }
                 });
  result.hits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.ops += slot_ops[i];
    result.hits.push_back({candidates[i], sims[i]});
  }
  detail::finalize_top_k(result, top_k);
  return result;
}

std::vector<QueryResult> FeatureIndex::rescore_batch(
    const std::vector<const feat::BinaryFeatures*>& queries,
    const std::vector<std::vector<ImageId>>& candidates,
    const std::vector<int>& top_k) const {
  obs::ScopedTimer timer("cloud.query.rescore.seconds");
  const std::size_t nq = queries.size();
  std::vector<QueryResult> results(nq);
  // Per-(query, slot) outputs: each slot is written by exactly one
  // candidate group below, so the parallel sweep is race-free and the
  // values match the serial single-query rescore slot for slot.
  std::vector<std::vector<double>> sims(nq);
  std::vector<std::vector<std::uint64_t>> slot_ops(nq);
  // Group subscribing (query, slot) pairs by stored image, in first-seen
  // order: each group packs its image's descriptors once and streams every
  // subscribed query against them.
  struct Group {
    ImageId id;
    std::vector<std::pair<std::size_t, std::size_t>> slots;
  };
  std::unordered_map<ImageId, std::size_t> group_of;
  std::vector<Group> groups;
  for (std::size_t q = 0; q < nq; ++q) {
    const std::size_t n = candidates[q].size();
    results[q].candidates_checked = n;
    sims[q].assign(n, 0.0);
    slot_ops[q].assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const ImageId id = candidates[q][i];
      const auto [it, fresh] = group_of.try_emplace(id, groups.size());
      if (fresh) groups.push_back({id, {}});
      groups[it->second].slots.emplace_back(q, i);
    }
  }
  for_each_chunk(
      groups.size(), rescore_pool(), [&](std::size_t begin, std::size_t end) {
        feat::MatchWorkspace workspace;
        std::vector<const feat::BinaryFeatures*> batch;
        std::vector<double> batch_sims;
        std::vector<std::uint64_t> batch_ops;
        for (std::size_t g = begin; g < end; ++g) {
          const Group& group = groups[g];
          const std::size_t m = group.slots.size();
          batch.resize(m);
          for (std::size_t k = 0; k < m; ++k) {
            batch[k] = queries[group.slots[k].first];
          }
          batch_sims.assign(m, 0.0);
          batch_ops.assign(m, 0);
          feat::jaccard_similarity_batch(batch, images_[group.id].features,
                                         params_.match, batch_sims.data(),
                                         batch_ops.data(), workspace);
          for (std::size_t k = 0; k < m; ++k) {
            const auto [q, i] = group.slots[k];
            sims[q][i] = batch_sims[k];
            slot_ops[q][i] = batch_ops[k];
          }
        }
      });
  for (std::size_t q = 0; q < nq; ++q) {
    QueryResult& result = results[q];
    const std::size_t n = candidates[q].size();
    result.hits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      result.ops += slot_ops[q][i];
      result.hits.push_back({candidates[q][i], sims[q][i]});
    }
    detail::finalize_top_k(result, top_k[q]);
  }
  return results;
}

std::vector<std::pair<ImageId, std::uint32_t>> FeatureIndex::lsh_candidates(
    const feat::BinaryFeatures& query_features) const {
  if (images_.empty() || query_features.empty()) return {};
  // LSH voting: every query descriptor votes for owners of colliding
  // stored descriptors.
  std::unordered_map<std::uint32_t, std::uint32_t> votes;
  for (const auto& d : query_features.descriptors) lsh_.vote(d, votes);

  std::vector<std::pair<ImageId, std::uint32_t>> ranked(votes.begin(),
                                                        votes.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  const auto budget = static_cast<std::size_t>(params_.max_candidates);
  if (ranked.size() > budget) ranked.resize(budget);
  return ranked;
}

std::vector<std::pair<ImageId, std::uint32_t>> FeatureIndex::candidates(
    const feat::BinaryFeatures& query_features, double recall_target) const {
  if (!ann_) return lsh_candidates(query_features);
  if (images_.empty() || query_features.empty()) return {};
  std::unordered_map<ImageId, std::uint32_t> scores;
  ann_->collect(query_features.descriptors, scores);
  if (params_.enable_descriptor_lsh && params_.ann.merge_lsh_votes) {
    for (const auto& d : query_features.descriptors) lsh_.vote(d, scores);
  }
  std::vector<std::pair<ImageId, std::uint32_t>> ranked(scores.begin(),
                                                        scores.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  const std::size_t budget = candidate_budget(params_, recall_target);
  if (ranked.size() > budget) ranked.resize(budget);
  return ranked;
}

QueryResult FeatureIndex::query(const feat::BinaryFeatures& query_features,
                                int top_k) const {
  QueryOptions options;
  options.top_k = top_k;
  return query(query_features, options);
}

QueryResult FeatureIndex::query(const feat::BinaryFeatures& query_features,
                                const QueryOptions& options) const {
  if (images_.empty() || query_features.empty()) return {};
  const auto ranked = candidates(query_features, options.recall_target);
  std::vector<ImageId> shortlist;
  shortlist.reserve(ranked.size());
  for (const auto& [id, score] : ranked) shortlist.push_back(id);
  return rescore(query_features, shortlist, options.top_k);
}

QueryResult FeatureIndex::query_exact(
    const feat::BinaryFeatures& query_features, int top_k) const {
  if (images_.empty() || query_features.empty()) return {};
  std::vector<ImageId> all(images_.size());
  for (std::size_t i = 0; i < images_.size(); ++i) {
    all[i] = static_cast<ImageId>(i);
  }
  return rescore(query_features, all, top_k);
}

FloatFeatureIndex::FloatFeatureIndex(const Params& params) : params_(params) {}

util::ThreadPool* FloatFeatureIndex::rescore_pool() const {
  const std::size_t threads = resolve_threads(params_.rescore_threads);
  if (threads <= 1) return nullptr;
  if (!pool_) pool_ = std::make_shared<util::ThreadPool>(threads);
  return pool_.get();
}

std::vector<float> FloatFeatureIndex::centroid_of(
    const feat::FloatFeatures& f) {
  std::vector<float> c(static_cast<std::size_t>(f.dim), 0.0f);
  if (f.empty()) return c;
  for (std::size_t i = 0; i < f.size(); ++i) {
    const float* row = f.row(i);
    for (int d = 0; d < f.dim; ++d) c[static_cast<std::size_t>(d)] += row[d];
  }
  for (auto& v : c) v /= static_cast<float>(f.size());
  return c;
}

ImageId FloatFeatureIndex::insert(feat::FloatFeatures features,
                                  const GeoTag& geo) {
  const auto id = static_cast<ImageId>(images_.size());
  wire_bytes_ += features.wire_bytes();
  Entry e;
  e.centroid = centroid_of(features);
  e.features = std::move(features);
  e.geo = geo;
  images_.push_back(std::move(e));
  return id;
}

std::vector<std::pair<double, ImageId>> FloatFeatureIndex::centroid_candidates(
    const feat::FloatFeatures& query_features) const {
  if (images_.empty() || query_features.empty()) return {};
  const std::vector<float> qc = centroid_of(query_features);
  // Prune by centroid distance; pair ordering breaks distance ties by id.
  std::vector<std::pair<double, ImageId>> ranked;
  ranked.reserve(images_.size());
  for (std::size_t i = 0; i < images_.size(); ++i) {
    if (images_[i].features.dim != query_features.dim) continue;
    const double d = feat::l2_sq(qc.data(), images_[i].centroid.data(),
                                 query_features.dim);
    ranked.emplace_back(d, static_cast<ImageId>(i));
  }
  std::sort(ranked.begin(), ranked.end());
  const auto budget = std::min<std::size_t>(
      ranked.size(), static_cast<std::size_t>(params_.max_candidates));
  ranked.resize(budget);
  return ranked;
}

QueryResult FloatFeatureIndex::rescore(
    const feat::FloatFeatures& query_features,
    const std::vector<ImageId>& candidates, int top_k) const {
  obs::ScopedTimer timer("cloud.query.rescore.seconds");
  QueryResult result;
  const std::size_t n = candidates.size();
  result.candidates_checked = n;
  std::vector<double> sims(n, 0.0);
  std::vector<std::uint64_t> slot_ops(n, 0);
  for_each_chunk(n, rescore_pool(),
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     sims[i] = feat::jaccard_similarity(
                         query_features, images_[candidates[i]].features,
                         params_.match, &slot_ops[i]);
                   }
                 });
  result.hits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.ops += slot_ops[i];
    result.hits.push_back({candidates[i], sims[i]});
  }
  detail::finalize_top_k(result, top_k);
  return result;
}

QueryResult FloatFeatureIndex::query(const feat::FloatFeatures& query_features,
                                     int top_k) const {
  if (images_.empty() || query_features.empty()) return {};
  const auto ranked = centroid_candidates(query_features);
  std::vector<ImageId> candidates;
  candidates.reserve(ranked.size());
  for (const auto& [dist, id] : ranked) candidates.push_back(id);
  return rescore(query_features, candidates, top_k);
}

}  // namespace bees::idx
