#include "index/feature_index.hpp"

#include <algorithm>
#include <unordered_map>

#include "features/similarity.hpp"

namespace bees::idx {

FeatureIndex::FeatureIndex(const FeatureIndexParams& params)
    : params_(params), lsh_(params.lsh) {}

ImageId FeatureIndex::insert(feat::BinaryFeatures features,
                             const GeoTag& geo) {
  const auto id = static_cast<ImageId>(images_.size());
  for (const auto& d : features.descriptors) lsh_.insert(d, id);
  wire_bytes_ += features.wire_bytes();
  images_.push_back({std::move(features), geo});
  return id;
}

QueryResult FeatureIndex::rescore(const feat::BinaryFeatures& query_features,
                                  const std::vector<ImageId>& candidates,
                                  int top_k) const {
  QueryResult result;
  for (const ImageId id : candidates) {
    const double sim = feat::jaccard_similarity(
        query_features, images_[id].features, params_.match, &result.ops);
    result.hits.push_back({id, sim});
  }
  result.candidates_checked = candidates.size();
  std::sort(result.hits.begin(), result.hits.end(),
            [](const QueryHit& a, const QueryHit& b) {
              return a.similarity > b.similarity;
            });
  if (result.hits.size() > static_cast<std::size_t>(top_k)) {
    result.hits.resize(static_cast<std::size_t>(top_k));
  }
  if (!result.hits.empty()) {
    result.max_similarity = result.hits.front().similarity;
    result.best_id = result.hits.front().id;
  }
  return result;
}

QueryResult FeatureIndex::query(const feat::BinaryFeatures& query_features,
                                int top_k) const {
  if (images_.empty() || query_features.empty()) return {};
  // LSH voting: every query descriptor votes for owners of colliding
  // stored descriptors.
  std::unordered_map<std::uint32_t, std::uint32_t> votes;
  for (const auto& d : query_features.descriptors) lsh_.vote(d, votes);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranked(votes.begin(),
                                                              votes.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<ImageId> candidates;
  const auto budget = static_cast<std::size_t>(params_.max_candidates);
  for (const auto& [id, count] : ranked) {
    if (candidates.size() >= budget) break;
    candidates.push_back(id);
  }
  return rescore(query_features, candidates, top_k);
}

QueryResult FeatureIndex::query_exact(
    const feat::BinaryFeatures& query_features, int top_k) const {
  if (images_.empty() || query_features.empty()) return {};
  std::vector<ImageId> all(images_.size());
  for (std::size_t i = 0; i < images_.size(); ++i) {
    all[i] = static_cast<ImageId>(i);
  }
  return rescore(query_features, all, top_k);
}

FloatFeatureIndex::FloatFeatureIndex(const Params& params) : params_(params) {}

std::vector<float> FloatFeatureIndex::centroid_of(
    const feat::FloatFeatures& f) {
  std::vector<float> c(static_cast<std::size_t>(f.dim), 0.0f);
  if (f.empty()) return c;
  for (std::size_t i = 0; i < f.size(); ++i) {
    const float* row = f.row(i);
    for (int d = 0; d < f.dim; ++d) c[static_cast<std::size_t>(d)] += row[d];
  }
  for (auto& v : c) v /= static_cast<float>(f.size());
  return c;
}

ImageId FloatFeatureIndex::insert(feat::FloatFeatures features,
                                  const GeoTag& geo) {
  const auto id = static_cast<ImageId>(images_.size());
  wire_bytes_ += features.wire_bytes();
  Entry e;
  e.centroid = centroid_of(features);
  e.features = std::move(features);
  e.geo = geo;
  images_.push_back(std::move(e));
  return id;
}

QueryResult FloatFeatureIndex::query(const feat::FloatFeatures& query_features,
                                     int top_k) const {
  QueryResult result;
  if (images_.empty() || query_features.empty()) return result;
  const std::vector<float> qc = centroid_of(query_features);
  // Prune by centroid distance, then rescore exactly.
  std::vector<std::pair<double, ImageId>> ranked;
  ranked.reserve(images_.size());
  for (std::size_t i = 0; i < images_.size(); ++i) {
    if (images_[i].features.dim != query_features.dim) continue;
    const double d = feat::l2_sq(qc.data(), images_[i].centroid.data(),
                                 query_features.dim);
    ranked.emplace_back(d, static_cast<ImageId>(i));
  }
  std::sort(ranked.begin(), ranked.end());
  const auto budget = std::min<std::size_t>(
      ranked.size(), static_cast<std::size_t>(params_.max_candidates));
  for (std::size_t i = 0; i < budget; ++i) {
    const ImageId id = ranked[i].second;
    const double sim = feat::jaccard_similarity(
        query_features, images_[id].features, params_.match, &result.ops);
    result.hits.push_back({id, sim});
  }
  result.candidates_checked = budget;
  std::sort(result.hits.begin(), result.hits.end(),
            [](const QueryHit& a, const QueryHit& b) {
              return a.similarity > b.similarity;
            });
  if (result.hits.size() > static_cast<std::size_t>(top_k)) {
    result.hits.resize(static_cast<std::size_t>(top_k));
  }
  if (!result.hits.empty()) {
    result.max_similarity = result.hits.front().similarity;
    result.best_id = result.hits.front().id;
  }
  return result;
}

}  // namespace bees::idx
