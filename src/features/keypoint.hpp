// Keypoint and descriptor value types shared by all feature extractors.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

namespace bees::feat {

/// A detected interest point.  Coordinates are in the full-resolution image
/// frame even when detection happened on a pyramid level.
struct Keypoint {
  float x = 0;
  float y = 0;
  float response = 0;   ///< Detector score (higher = stronger corner).
  float angle = 0;      ///< Orientation in radians (intensity centroid).
  int level = 0;        ///< Pyramid level the point was detected on.
  float scale = 1.0f;   ///< Pyramid scale factor at that level.
};

/// 256-bit binary descriptor (ORB).  Stored as four 64-bit lanes so Hamming
/// distance is four XOR+popcount operations.
struct Descriptor256 {
  std::array<std::uint64_t, 4> bits{};

  void set_bit(int i) noexcept {
    bits[static_cast<std::size_t>(i >> 6)] |= std::uint64_t{1} << (i & 63);
  }
  bool get_bit(int i) const noexcept {
    return (bits[static_cast<std::size_t>(i >> 6)] >>
            (i & 63)) & 1;
  }

  bool operator==(const Descriptor256&) const noexcept = default;
};

/// Hamming distance between two 256-bit descriptors, in [0, 256].
inline int hamming_distance(const Descriptor256& a,
                            const Descriptor256& b) noexcept {
  int d = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    d += std::popcount(a.bits[i] ^ b.bits[i]);
  }
  return d;
}

/// Counters for the compute performed by an extraction, used by the energy
/// model (energy = alpha * ops).  Extractors count the work they actually
/// do: pixels touched by filters, descriptor comparisons, etc.
struct ExtractionStats {
  std::uint64_t ops = 0;          ///< Abstract arithmetic operations.
  std::size_t keypoint_count = 0; ///< Descriptors produced.
};

/// A binary feature set: the ORB representation of one image.
struct BinaryFeatures {
  std::vector<Keypoint> keypoints;
  std::vector<Descriptor256> descriptors;
  ExtractionStats stats;

  std::size_t size() const noexcept { return descriptors.size(); }
  bool empty() const noexcept { return descriptors.empty(); }
  /// Serialized byte cost of the descriptor payload (32 B per descriptor).
  std::size_t wire_bytes() const noexcept { return descriptors.size() * 32; }
};

/// A float feature set: SIFT-style (dim=128) or PCA-SIFT-style (dim=36).
struct FloatFeatures {
  int dim = 0;
  std::vector<Keypoint> keypoints;
  std::vector<float> values;  ///< keypoints.size() * dim, row-major.
  ExtractionStats stats;

  std::size_t size() const noexcept {
    return dim == 0 ? 0 : values.size() / static_cast<std::size_t>(dim);
  }
  bool empty() const noexcept { return values.empty(); }
  const float* row(std::size_t i) const noexcept {
    return values.data() + i * static_cast<std::size_t>(dim);
  }
  /// Serialized byte cost (4 B per component), the Table I quantity.
  std::size_t wire_bytes() const noexcept { return values.size() * 4; }
};

}  // namespace bees::feat
