#include "features/matching.hpp"

#include <cmath>
#include <limits>

#include "features/match_kernel.hpp"

namespace bees::feat {

namespace {

/// For every descriptor of `a`, the index of its Hamming-nearest descriptor
/// in `b` if it passes the distance and ratio gates, else SIZE_MAX.
std::vector<std::size_t> nearest_binary(const std::vector<Descriptor256>& a,
                                        const std::vector<Descriptor256>& b,
                                        const BinaryMatchParams& params,
                                        std::vector<int>* distances,
                                        std::uint64_t* ops) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> out(a.size(), kNone);
  if (distances) distances->assign(a.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    int best = std::numeric_limits<int>::max();
    int second = std::numeric_limits<int>::max();
    std::size_t best_j = kNone;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const int d = hamming_distance(a[i], b[j]);
      if (d < best) {
        second = best;
        best = d;
        best_j = j;
      } else if (d < second) {
        second = d;
      }
    }
    if (ops) *ops += b.size();
    if (best <= params.max_distance &&
        (second == std::numeric_limits<int>::max() ||
         best < params.ratio * static_cast<double>(second))) {
      out[i] = best_j;
      if (distances) (*distances)[i] = best;
    }
  }
  return out;
}

}  // namespace

std::vector<Match> match_binary(const std::vector<Descriptor256>& a,
                                const std::vector<Descriptor256>& b,
                                const BinaryMatchParams& params,
                                std::uint64_t* ops) {
  thread_local MatchWorkspace workspace;
  return match_binary_kernel(a, b, params, ops, workspace);
}

std::vector<Match> match_binary_naive(const std::vector<Descriptor256>& a,
                                      const std::vector<Descriptor256>& b,
                                      const BinaryMatchParams& params,
                                      std::uint64_t* ops) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<Match> matches;
  if (a.empty() || b.empty()) return matches;
  std::vector<int> dist_ab;
  const auto fwd = nearest_binary(a, b, params, &dist_ab, ops);
  if (!params.cross_check) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (fwd[i] != kNone) {
        matches.push_back({i, fwd[i], static_cast<double>(dist_ab[i])});
      }
    }
    return matches;
  }
  const auto rev = nearest_binary(b, a, params, nullptr, ops);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t j = fwd[i];
    if (j != kNone && rev[j] == i) {
      matches.push_back({i, j, static_cast<double>(dist_ab[i])});
    }
  }
  return matches;
}

double l2_sq(const float* x, const float* y, int dim) noexcept {
  double acc = 0;
  for (int d = 0; d < dim; ++d) {
    const double diff = static_cast<double>(x[d]) - y[d];
    acc += diff * diff;
  }
  return acc;
}

namespace {

std::vector<std::size_t> nearest_float(const FloatFeatures& a,
                                       const FloatFeatures& b,
                                       const FloatMatchParams& params,
                                       std::vector<double>* distances,
                                       std::uint64_t* ops) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> out(a.size(), kNone);
  if (distances) distances->assign(a.size(), 0.0);
  const double max_sq = params.max_distance * params.max_distance;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    double second = best;
    std::size_t best_j = kNone;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const double d = l2_sq(a.row(i), b.row(j), a.dim);
      if (d < best) {
        second = best;
        best = d;
        best_j = j;
      } else if (d < second) {
        second = d;
      }
    }
    if (ops) *ops += b.size() * static_cast<std::uint64_t>(a.dim);
    if (best <= max_sq &&
        (!std::isfinite(second) ||
         std::sqrt(best) < params.ratio * std::sqrt(second))) {
      out[i] = best_j;
      if (distances) (*distances)[i] = std::sqrt(best);
    }
  }
  return out;
}

}  // namespace

std::vector<Match> match_float(const FloatFeatures& a, const FloatFeatures& b,
                               const FloatMatchParams& params,
                               std::uint64_t* ops) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<Match> matches;
  if (a.empty() || b.empty() || a.dim != b.dim) return matches;
  std::vector<double> dist_ab;
  const auto fwd = nearest_float(a, b, params, &dist_ab, ops);
  if (!params.cross_check) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (fwd[i] != kNone) matches.push_back({i, fwd[i], dist_ab[i]});
    }
    return matches;
  }
  const auto rev = nearest_float(b, a, params, nullptr, ops);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t j = fwd[i];
    if (j != kNone && rev[j] == i) matches.push_back({i, j, dist_ab[i]});
  }
  return matches;
}

}  // namespace bees::feat
