#include "features/match_kernel.hpp"

#include <bit>
#include <limits>

#include "obs/metrics.hpp"

namespace bees::feat {

namespace {
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}  // namespace

void PackedDescriptors::assign(const std::vector<Descriptor256>& descriptors) {
  size_ = descriptors.size();
  lanes_.resize(4 * size_);
  for (std::size_t l = 0; l < 4; ++l) {
    std::uint64_t* out = lanes_.data() + l * size_;
    for (std::size_t j = 0; j < size_; ++j) out[j] = descriptors[j].bits[l];
  }
}

namespace {

/// Per-byte popcounts of `x` (each byte holds 0..8): the first three SWAR
/// reduction steps of the classic popcount, without the final horizontal
/// sum.  Byte counts from up to 31 words can be added before the horizontal
/// sum, so multi-lane distances share one reduction.
inline std::uint64_t byte_counts(std::uint64_t x) noexcept {
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  return (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
}

/// Horizontal sum of the eight byte counts.
inline int reduce_bytes(std::uint64_t counts) noexcept {
  return static_cast<int>((counts * 0x0101010101010101ull) >> 56);
}

}  // namespace

struct MatchKernelImpl {
  /// The scan loop, templated on the cross-check flag so the single-pass
  /// column bookkeeping compiles out of the forward-only path entirely.
  /// Requires a and b non-empty.  Returns the number of lanes pruned.
  template <bool Cross>
  static std::uint64_t scan(const std::vector<Descriptor256>& a,
                            const BinaryMatchParams& params,
                            MatchWorkspace& ws) {
    constexpr int kIntMax = std::numeric_limits<int>::max();
    const std::size_t na = a.size();
    const std::size_t nb = ws.packed_b_.size();
    const std::uint64_t* b0 = ws.packed_b_.lane(0);
    const std::uint64_t* b1 = ws.packed_b_.lane(1);
    const std::uint64_t* b2 = ws.packed_b_.lane(2);
    const std::uint64_t* b3 = ws.packed_b_.lane(3);
    int* col_best = ws.col_best_.data();
    int* col_second = ws.col_second_.data();
    std::size_t* col_best_i = ws.col_best_i_.data();

    std::uint64_t lanes_pruned = 0;
    for (std::size_t i = 0; i < na; ++i) {
      const std::uint64_t q0 = a[i].bits[0];
      const std::uint64_t q1 = a[i].bits[1];
      const std::uint64_t q2 = a[i].bits[2];
      const std::uint64_t q3 = a[i].bits[3];
      int best = kIntMax;
      int second = kIntMax;
      std::size_t best_j = kNone;
      for (std::size_t j = 0; j < nb; ++j) {
        // Early exit: the full distance can only grow from a partial sum,
        // so once the partial reaches the row's second-best (and, for
        // cross-checking, this column's second-best) neither side can be
        // updated and the remaining lanes are skipped.  Exact pruning:
        // every comparison the naive matcher acts on is still computed in
        // full, so winners and ties never change.
        const int d0 = reduce_bytes(byte_counts(q0 ^ b0[j]));
        if (d0 >= second && (!Cross || d0 >= col_second[j])) {
          lanes_pruned += 3;
          continue;
        }
        const int d012 =
            d0 + reduce_bytes(byte_counts(q1 ^ b1[j]) +
                              byte_counts(q2 ^ b2[j]));
        if (d012 >= second && (!Cross || d012 >= col_second[j])) {
          lanes_pruned += 1;
          continue;
        }
        const int d = d012 + reduce_bytes(byte_counts(q3 ^ b3[j]));
        if (d < best) {
          second = best;
          best = d;
          best_j = j;
        } else if (d < second) {
          second = d;
        }
        if (Cross) {
          if (d < col_best[j]) {
            col_second[j] = col_best[j];
            col_best[j] = d;
            col_best_i[j] = i;
          } else if (d < col_second[j]) {
            col_second[j] = d;
          }
        }
      }
      if (best <= params.max_distance &&
          (second == kIntMax ||
           best < params.ratio * static_cast<double>(second))) {
        ws.fwd_[i] = best_j;
        ws.fwd_dist_[i] = best;
      }
    }
    return lanes_pruned;
  }

  /// Fills workspace.fwd_/fwd_dist_ with the gated forward matches of every
  /// a-descriptor and (when `cross_check`) workspace.col_* with the reverse
  /// best/second/winner per b-descriptor; charges the modeled comparison
  /// count and the lane counters.  Requires a and b non-empty.
  static void run(const std::vector<Descriptor256>& a,
                  const std::vector<Descriptor256>& b,
                  const BinaryMatchParams& params, std::uint64_t* ops,
                  MatchWorkspace& ws) {
    constexpr int kIntMax = std::numeric_limits<int>::max();
    const std::size_t na = a.size();
    const std::size_t nb = b.size();
    const bool cross = params.cross_check;

    ws.packed_b_.assign(b);
    ws.fwd_.assign(na, kNone);
    ws.fwd_dist_.assign(na, 0);
    if (cross) {
      ws.col_best_.assign(nb, kIntMax);
      ws.col_second_.assign(nb, kIntMax);
      ws.col_best_i_.assign(nb, kNone);
    }

    const std::uint64_t lanes_pruned =
        cross ? scan<true>(a, params, ws) : scan<false>(a, params, ws);

    // Modeled comparisons, exactly as the naive matcher counts them: one
    // per (a, b) descriptor pair per direction.  The energy model consumes
    // this; lane savings from pruning are reported separately below.
    const auto pairs = static_cast<std::uint64_t>(na) * nb;
    if (ops) *ops += cross ? 2 * pairs : pairs;
    obs::count("feat.match.lanes_examined",
               static_cast<double>(4 * pairs - lanes_pruned));
    obs::count("feat.match.lanes_pruned", static_cast<double>(lanes_pruned));
  }

  /// Applies the distance/ratio gates to column j's reverse stats and
  /// returns the winning a-index, or kNone.
  static std::size_t reverse_winner(const MatchWorkspace& ws, std::size_t j,
                                    const BinaryMatchParams& params) {
    constexpr int kIntMax = std::numeric_limits<int>::max();
    const int best = ws.col_best_[j];
    const int second = ws.col_second_[j];
    if (best <= params.max_distance &&
        (second == kIntMax ||
         best < params.ratio * static_cast<double>(second))) {
      return ws.col_best_i_[j];
    }
    return kNone;
  }

  template <typename Emit>
  static void matches(const std::vector<Descriptor256>& a,
                      const std::vector<Descriptor256>& b,
                      const BinaryMatchParams& params, std::uint64_t* ops,
                      MatchWorkspace& ws, Emit&& emit) {
    if (a.empty() || b.empty()) return;
    run(a, b, params, ops, ws);
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::size_t j = ws.fwd_[i];
      if (j == kNone) continue;
      if (params.cross_check && reverse_winner(ws, j, params) != i) continue;
      emit(i, j, ws.fwd_dist_[i]);
    }
  }
};

std::vector<Match> match_binary_kernel(const std::vector<Descriptor256>& a,
                                       const std::vector<Descriptor256>& b,
                                       const BinaryMatchParams& params,
                                       std::uint64_t* ops,
                                       MatchWorkspace& workspace) {
  std::vector<Match> out;
  MatchKernelImpl::matches(a, b, params, ops, workspace,
                           [&out](std::size_t i, std::size_t j, int dist) {
                             out.push_back({i, j, static_cast<double>(dist)});
                           });
  return out;
}

std::size_t match_binary_count(const std::vector<Descriptor256>& a,
                               const std::vector<Descriptor256>& b,
                               const BinaryMatchParams& params,
                               std::uint64_t* ops,
                               MatchWorkspace& workspace) {
  std::size_t count = 0;
  MatchKernelImpl::matches(a, b, params, ops, workspace,
                           [&count](std::size_t, std::size_t, int) {
                             ++count;
                           });
  return count;
}

}  // namespace bees::feat
