#include "features/match_kernel.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "obs/metrics.hpp"

namespace bees::feat {

namespace {
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}  // namespace

// The candidate-major pack is a straight memcpy of the descriptor vector,
// which requires the wire layout below; a Descriptor256 is exactly one
// kLaneAlignment-sized block of kLaneBlock words.
static_assert(sizeof(Descriptor256) ==
              detail::kLaneBlock * sizeof(std::uint64_t));
static_assert(sizeof(Descriptor256) == detail::kLaneAlignment);

void PackedDescriptors::assign(const std::vector<Descriptor256>& descriptors) {
  size_ = descriptors.size();
  padded_ = (size_ + detail::kLaneBlock - 1) / detail::kLaneBlock *
            detail::kLaneBlock;
  lanes_.resize(4 * padded_);
  for (std::size_t l = 0; l < 4; ++l) {
    std::uint64_t* out = lanes_.data() + l * padded_;
    for (std::size_t j = 0; j < size_; ++j) out[j] = descriptors[j].bits[l];
    // Zero-fill the pad so every buffer word is defined memory; sanitizers
    // and determinism both prefer zeros.
    for (std::size_t j = size_; j < padded_; ++j) out[j] = 0;
  }
  // Candidate-major copy for the vector kernels: each descriptor's four
  // lanes contiguous, i.e. the Descriptor256 memory layout itself.
  words_.resize(detail::kLaneBlock * size_);
  if (size_ > 0) {
    std::memcpy(words_.data(), descriptors.data(),
                size_ * sizeof(Descriptor256));
  }
}

namespace {

/// Per-byte popcounts of `x` (each byte holds 0..8): the first three SWAR
/// reduction steps of the classic popcount, without the final horizontal
/// sum.  Byte counts from up to 31 words can be added before the horizontal
/// sum, so multi-lane distances share one reduction.
inline std::uint64_t byte_counts(std::uint64_t x) noexcept {
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  return (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
}

/// Horizontal sum of the eight byte counts.
inline int reduce_bytes(std::uint64_t counts) noexcept {
  return static_cast<int>((counts * 0x0101010101010101ull) >> 56);
}

}  // namespace

struct MatchKernelImpl {
  /// Shared per-candidate decision step: replays the two early-exit
  /// checkpoints and the best/second bookkeeping on three partial sums.
  /// Both the scalar fused loop and the SIMD decision scan funnel through
  /// this, which is what makes the paths bit-identical by construction —
  /// they differ only in how the partials are produced.
  struct RowState {
    int best;
    int second;
    std::size_t best_j;
  };

  /// The scalar SWAR scan loop, templated on the cross-check flag so the
  /// single-pass column bookkeeping compiles out of the forward-only path
  /// entirely.  Requires a and b non-empty.  Returns lanes pruned.
  template <bool Cross>
  static std::uint64_t scan(const std::vector<Descriptor256>& a,
                            const BinaryMatchParams& params,
                            MatchWorkspace& ws) {
    constexpr int kIntMax = std::numeric_limits<int>::max();
    const std::size_t na = a.size();
    const std::size_t nb = ws.packed_b_.size();
    const std::uint64_t* b0 = ws.packed_b_.lane(0);
    const std::uint64_t* b1 = ws.packed_b_.lane(1);
    const std::uint64_t* b2 = ws.packed_b_.lane(2);
    const std::uint64_t* b3 = ws.packed_b_.lane(3);
    int* col_best = ws.col_best_.data();
    int* col_second = ws.col_second_.data();
    std::size_t* col_best_i = ws.col_best_i_.data();

    std::uint64_t lanes_pruned = 0;
    for (std::size_t i = 0; i < na; ++i) {
      const std::uint64_t q0 = a[i].bits[0];
      const std::uint64_t q1 = a[i].bits[1];
      const std::uint64_t q2 = a[i].bits[2];
      const std::uint64_t q3 = a[i].bits[3];
      int best = kIntMax;
      int second = kIntMax;
      std::size_t best_j = kNone;
      for (std::size_t j = 0; j < nb; ++j) {
        // Early exit: the full distance can only grow from a partial sum,
        // so once the partial reaches the row's second-best (and, for
        // cross-checking, this column's second-best) neither side can be
        // updated and the remaining lanes are skipped.  Exact pruning:
        // every comparison the naive matcher acts on is still computed in
        // full, so winners and ties never change.
        const int d0 = reduce_bytes(byte_counts(q0 ^ b0[j]));
        if (d0 >= second && (!Cross || d0 >= col_second[j])) {
          lanes_pruned += 3;
          continue;
        }
        const int d012 =
            d0 + reduce_bytes(byte_counts(q1 ^ b1[j]) +
                              byte_counts(q2 ^ b2[j]));
        if (d012 >= second && (!Cross || d012 >= col_second[j])) {
          lanes_pruned += 1;
          continue;
        }
        const int d = d012 + reduce_bytes(byte_counts(q3 ^ b3[j]));
        if (d < best) {
          second = best;
          best = d;
          best_j = j;
        } else if (d < second) {
          second = d;
        }
        if (Cross) {
          if (d < col_best[j]) {
            col_second[j] = col_best[j];
            col_best[j] = d;
            col_best_i[j] = i;
          } else if (d < col_second[j]) {
            col_second[j] = d;
          }
        }
      }
      if (best <= params.max_distance &&
          (second == kIntMax ||
           best < params.ratio * static_cast<double>(second))) {
        ws.fwd_[i] = best_j;
        ws.fwd_dist_[i] = best;
      }
    }
    return lanes_pruned;
  }

  /// The vector scan loop: a lane kernel fills the row's per-lane sums for
  /// every candidate branch-free, then a scalar decision scan replays the
  /// checkpoint logic on the buffered sums — same winners, same tie order,
  /// same counters as scan<Cross>.
  ///
  /// The replay exploits an invariant of the checkpoints: a pair the
  /// scalar loop prunes (partial >= second, and >= col_second when
  /// cross-checking) can never update best/second or the column stats,
  /// because the full distance only grows from the partial that already
  /// reached the bound.  So the replay computes the full distance
  /// unconditionally (the sums are all buffered anyway), applies the
  /// updates behind the same `d < bound` guards — no-ops exactly where the
  /// scalar loop skipped — and tracks the prune counters as branchless
  /// flag arithmetic.  That removes the data-dependent prune branches the
  /// predictor cannot learn, which would otherwise eat the vector win.
  /// The modeled prune counters describe the semantic early exits, not the
  /// vector work actually done (which feat.match.simd_lanes reports).
  template <bool Cross>
  static std::uint64_t scan_simd(const std::vector<Descriptor256>& a,
                                 const BinaryMatchParams& params,
                                 MatchWorkspace& ws,
                                 detail::LaneRowFn lane_rows) {
    constexpr int kIntMax = std::numeric_limits<int>::max();
    const std::size_t na = a.size();
    const std::size_t nb = ws.packed_b_.size();
    const std::uint64_t* words = ws.packed_b_.words();
    // Candidates are processed in tiles so the sums the vector kernel just
    // wrote are still in L1 when the decision scan reads them back (at a
    // few hundred candidates a full row of sums starts evicting itself).
    constexpr std::size_t kTile = 128;
    const std::size_t tile = nb < kTile ? nb : kTile;
    ws.row_sums_.resize(detail::kLaneBlock * tile);
    std::uint64_t* sums = ws.row_sums_.data();
    int* col_best = ws.col_best_.data();
    int* col_second = ws.col_second_.data();
    std::size_t* col_best_i = ws.col_best_i_.data();

    std::uint64_t lanes_pruned = 0;
    for (std::size_t i = 0; i < na; ++i) {
      int best = kIntMax;
      int second = kIntMax;
      std::size_t best_j = kNone;
      for (std::size_t t0 = 0; t0 < nb; t0 += tile) {
      const std::size_t tn = nb - t0 < tile ? nb - t0 : tile;
      lane_rows(a[i].bits.data(), words + detail::kLaneBlock * t0, tn, sums);
      for (std::size_t jt = 0; jt < tn; ++jt) {
        const std::size_t j = t0 + jt;
        const std::uint64_t* s = sums + detail::kLaneBlock * jt;
        const int d0 = static_cast<int>(s[0]);
        const int d012 = d0 + static_cast<int>(s[1] + s[2]);
        const int d = d012 + static_cast<int>(s[3]);
        // Exact replay of the scalar prune decisions, as branchless flag
        // arithmetic (bitwise &, so no unpredictable short-circuit jumps).
        const unsigned p0 =
            static_cast<unsigned>(d0 >= second) &
            (Cross ? static_cast<unsigned>(d0 >= col_second[j]) : 1u);
        const unsigned p012 =
            (p0 ^ 1u) & static_cast<unsigned>(d012 >= second) &
            (Cross ? static_cast<unsigned>(d012 >= col_second[j]) : 1u);
        lanes_pruned += 3u * p0 + p012;
        // Updates guarded exactly as in the fused loop; where the scalar
        // loop pruned, these guards are provably false.
        if (d < second) {
          if (d < best) {
            second = best;
            best = d;
            best_j = j;
          } else {
            second = d;
          }
        }
        if (Cross) {
          if (d < col_second[j]) {
            if (d < col_best[j]) {
              col_second[j] = col_best[j];
              col_best[j] = d;
              col_best_i[j] = i;
            } else {
              col_second[j] = d;
            }
          }
        }
      }
      }
      if (best <= params.max_distance &&
          (second == kIntMax ||
           best < params.ratio * static_cast<double>(second))) {
        ws.fwd_[i] = best_j;
        ws.fwd_dist_[i] = best;
      }
    }
    return lanes_pruned;
  }

  /// Fills workspace.fwd_/fwd_dist_ with the gated forward matches of every
  /// a-descriptor and (when `cross_check`) workspace.col_* with the reverse
  /// best/second/winner per b-descriptor; charges the modeled comparison
  /// count and the lane counters.  Requires a non-empty and the workspace's
  /// packed_b_ already assigned (non-empty).
  static void run_packed(const std::vector<Descriptor256>& a,
                         const BinaryMatchParams& params, std::uint64_t* ops,
                         MatchWorkspace& ws) {
    constexpr int kIntMax = std::numeric_limits<int>::max();
    const std::size_t na = a.size();
    const std::size_t nb = ws.packed_b_.size();
    const bool cross = params.cross_check;

    ws.fwd_.assign(na, kNone);
    ws.fwd_dist_.assign(na, 0);
    if (cross) {
      ws.col_best_.assign(nb, kIntMax);
      ws.col_second_.assign(nb, kIntMax);
      ws.col_best_i_.assign(nb, kNone);
    }

    const detail::LaneRowFn lane_rows = detail::active_lane_rows();
    std::uint64_t lanes_pruned;
    if (lane_rows != nullptr) {
      lanes_pruned = cross ? scan_simd<true>(a, params, ws, lane_rows)
                           : scan_simd<false>(a, params, ws, lane_rows);
      // Vector lane words actually computed (4 lanes x candidates per
      // query row): the real-work counterpart of the modeled
      // examined/pruned split below.
      obs::count("feat.match.simd_lanes", static_cast<double>(4 * nb * na));
    } else {
      lanes_pruned = cross ? scan<true>(a, params, ws)
                           : scan<false>(a, params, ws);
    }

    // Modeled comparisons, exactly as the naive matcher counts them: one
    // per (a, b) descriptor pair per direction.  The energy model consumes
    // this; lane savings from pruning are reported separately below.
    const auto pairs = static_cast<std::uint64_t>(na) * nb;
    if (ops) *ops += cross ? 2 * pairs : pairs;
    obs::count("feat.match.lanes_examined",
               static_cast<double>(4 * pairs - lanes_pruned));
    obs::count("feat.match.lanes_pruned", static_cast<double>(lanes_pruned));
  }

  /// Applies the distance/ratio gates to column j's reverse stats and
  /// returns the winning a-index, or kNone.
  static std::size_t reverse_winner(const MatchWorkspace& ws, std::size_t j,
                                    const BinaryMatchParams& params) {
    constexpr int kIntMax = std::numeric_limits<int>::max();
    const int best = ws.col_best_[j];
    const int second = ws.col_second_[j];
    if (best <= params.max_distance &&
        (second == kIntMax ||
         best < params.ratio * static_cast<double>(second))) {
      return ws.col_best_i_[j];
    }
    return kNone;
  }

  /// Runs the scan against the already-packed candidate set and emits the
  /// surviving matches.  Requires a non-empty, packed_b_ non-empty.
  template <typename Emit>
  static void matches_packed(const std::vector<Descriptor256>& a,
                             const BinaryMatchParams& params,
                             std::uint64_t* ops, MatchWorkspace& ws,
                             Emit&& emit) {
    run_packed(a, params, ops, ws);
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::size_t j = ws.fwd_[i];
      if (j == kNone) continue;
      if (params.cross_check && reverse_winner(ws, j, params) != i) continue;
      emit(i, j, ws.fwd_dist_[i]);
    }
  }

  static void pack(const std::vector<Descriptor256>& b, MatchWorkspace& ws) {
    ws.packed_b_.assign(b);
  }

  template <typename Emit>
  static void matches(const std::vector<Descriptor256>& a,
                      const std::vector<Descriptor256>& b,
                      const BinaryMatchParams& params, std::uint64_t* ops,
                      MatchWorkspace& ws, Emit&& emit) {
    if (a.empty() || b.empty()) return;
    pack(b, ws);
    matches_packed(a, params, ops, ws, static_cast<Emit&&>(emit));
  }
};

std::vector<Match> match_binary_kernel(const std::vector<Descriptor256>& a,
                                       const std::vector<Descriptor256>& b,
                                       const BinaryMatchParams& params,
                                       std::uint64_t* ops,
                                       MatchWorkspace& workspace) {
  std::vector<Match> out;
  MatchKernelImpl::matches(a, b, params, ops, workspace,
                           [&out](std::size_t i, std::size_t j, int dist) {
                             out.push_back({i, j, static_cast<double>(dist)});
                           });
  return out;
}

std::size_t match_binary_count(const std::vector<Descriptor256>& a,
                               const std::vector<Descriptor256>& b,
                               const BinaryMatchParams& params,
                               std::uint64_t* ops,
                               MatchWorkspace& workspace) {
  std::size_t count = 0;
  MatchKernelImpl::matches(a, b, params, ops, workspace,
                           [&count](std::size_t, std::size_t, int) {
                             ++count;
                           });
  return count;
}

void match_binary_count_batch(
    const std::vector<const std::vector<Descriptor256>*>& batch,
    const std::vector<Descriptor256>& b, const BinaryMatchParams& params,
    std::size_t* counts, std::uint64_t* ops, MatchWorkspace& workspace) {
  const std::size_t nq = batch.size();
  for (std::size_t k = 0; k < nq; ++k) counts[k] = 0;
  if (nq == 0 || b.empty()) return;
  MatchKernelImpl::pack(b, workspace);
  for (std::size_t k = 0; k < nq; ++k) {
    const std::vector<Descriptor256>& a = *batch[k];
    if (a.empty()) continue;  // Same no-op (no ops charged) as single-query.
    std::size_t count = 0;
    MatchKernelImpl::matches_packed(a, params, ops ? ops + k : nullptr,
                                    workspace,
                                    [&count](std::size_t, std::size_t, int) {
                                      ++count;
                                    });
    counts[k] = count;
  }
}

}  // namespace bees::feat
