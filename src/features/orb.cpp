#include "features/orb.hpp"

#include <algorithm>
#include <cmath>

#include "features/fast.hpp"
#include "imaging/transform.hpp"
#include "util/rng.hpp"

namespace bees::feat {

namespace {

/// The 256 BRIEF test pairs.  Generated once, deterministically, from a
/// fixed seed with the Gaussian(0, patch/5) sampling of the original BRIEF
/// paper, clipped to the patch.
struct BriefPattern {
  std::array<std::int8_t, 256> x1, y1, x2, y2;

  explicit BriefPattern(int radius) {
    util::Rng rng(0x0b5e55ed5eedULL);  // fixed: pattern is part of the format
    const double sigma = radius / 2.5;
    auto sample = [&]() {
      const double v = rng.normal(0.0, sigma);
      return static_cast<std::int8_t>(std::clamp(
          static_cast<int>(std::lround(v)), -(radius - 2), radius - 2));
    };
    for (int i = 0; i < 256; ++i) {
      x1[static_cast<std::size_t>(i)] = sample();
      y1[static_cast<std::size_t>(i)] = sample();
      x2[static_cast<std::size_t>(i)] = sample();
      y2[static_cast<std::size_t>(i)] = sample();
    }
  }
};

const BriefPattern& pattern_for_radius15() {
  static const BriefPattern p(15);
  return p;
}

Descriptor256 steered_brief(const img::Image& gray, const Keypoint& kp,
                            int cx, int cy, std::uint64_t* ops) {
  const BriefPattern& pat = pattern_for_radius15();
  const float cosa = std::cos(kp.angle);
  const float sina = std::sin(kp.angle);
  Descriptor256 d;
  for (int i = 0; i < 256; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    // Rotate both test points by the keypoint orientation (steered BRIEF).
    const int ax = cx + static_cast<int>(std::lround(
                            cosa * pat.x1[idx] - sina * pat.y1[idx]));
    const int ay = cy + static_cast<int>(std::lround(
                            sina * pat.x1[idx] + cosa * pat.y1[idx]));
    const int bx = cx + static_cast<int>(std::lround(
                            cosa * pat.x2[idx] - sina * pat.y2[idx]));
    const int by = cy + static_cast<int>(std::lround(
                            sina * pat.x2[idx] + cosa * pat.y2[idx]));
    if (gray.at_clamped(ax, ay) < gray.at_clamped(bx, by)) d.set_bit(i);
  }
  if (ops) *ops += 256 * 8;
  return d;
}

}  // namespace

float intensity_centroid_angle(const img::Image& gray, int x, int y,
                               int radius) {
  double m10 = 0, m01 = 0;
  const int r2 = radius * radius;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy > r2) continue;
      const double v = gray.at_clamped(x + dx, y + dy);
      m10 += dx * v;
      m01 += dy * v;
    }
  }
  return static_cast<float>(std::atan2(m01, m10));
}

BinaryFeatures extract_orb(const img::Image& image, const OrbParams& params) {
  BinaryFeatures out;
  img::Image gray = img::to_gray(image);
  out.stats.ops += gray.pixel_count() * 3;  // grayscale conversion

  // Per-level keypoint quota proportional to level area so coarse levels
  // are not starved.
  std::vector<double> level_area(static_cast<std::size_t>(params.levels));
  double total_area = 0;
  for (int l = 0; l < params.levels; ++l) {
    const double s = std::pow(params.scale_factor, l);
    level_area[static_cast<std::size_t>(l)] = 1.0 / (s * s);
    total_area += level_area[static_cast<std::size_t>(l)];
  }

  img::Image level_img = gray;
  double scale = 1.0;
  for (int level = 0; level < params.levels; ++level) {
    if (level > 0) {
      const int w = std::max(
          32, static_cast<int>(std::lround(gray.width() /
                                           std::pow(params.scale_factor,
                                                    level))));
      const int h = std::max(
          32, static_cast<int>(std::lround(gray.height() /
                                           std::pow(params.scale_factor,
                                                    level))));
      if (w < 2 * params.patch_radius + 3 || h < 2 * params.patch_radius + 3) {
        break;
      }
      level_img = img::resize(gray, w, h);
      scale = static_cast<double>(gray.width()) / w;
      out.stats.ops += level_img.pixel_count() * 4;  // bilinear resize
    }
    // Light blur stabilizes the binary tests (as in the reference ORB).
    const img::Image blurred = img::gaussian_blur(level_img, 1.0);
    out.stats.ops += level_img.pixel_count() * 14;  // separable 7-tap x2

    FastParams fp;
    fp.threshold = params.fast_threshold;
    fp.border = params.patch_radius + 1;
    std::vector<Keypoint> kps = detect_fast(blurred, fp, &out.stats.ops);

    // Harris re-ranking: strongest corners first.
    for (auto& kp : kps) {
      kp.response = harris_response(blurred, static_cast<int>(kp.x),
                                    static_cast<int>(kp.y));
      out.stats.ops += 7 * 7 * 6;
    }
    std::sort(kps.begin(), kps.end(), [](const Keypoint& a, const Keypoint& b) {
      return a.response > b.response;
    });
    const auto quota = static_cast<std::size_t>(
        std::lround(params.max_features *
                    level_area[static_cast<std::size_t>(level)] / total_area));
    if (kps.size() > quota) kps.resize(quota);

    for (auto& kp : kps) {
      const int cx = static_cast<int>(kp.x);
      const int cy = static_cast<int>(kp.y);
      kp.angle = intensity_centroid_angle(blurred, cx, cy,
                                          params.patch_radius);
      out.stats.ops += static_cast<std::uint64_t>(params.patch_radius) *
                       params.patch_radius * 4;
      const Descriptor256 d =
          steered_brief(blurred, kp, cx, cy, &out.stats.ops);
      kp.level = level;
      kp.scale = static_cast<float>(scale);
      kp.x = static_cast<float>(kp.x * scale);
      kp.y = static_cast<float>(kp.y * scale);
      out.keypoints.push_back(kp);
      out.descriptors.push_back(d);
    }
  }
  out.stats.keypoint_count = out.descriptors.size();
  return out;
}

}  // namespace bees::feat
