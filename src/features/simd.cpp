#include "features/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "features/match_lanes.hpp"

namespace bees::feat {

namespace {

constexpr int kNoForce = -1;
std::atomic<int> g_forced{kNoForce};

bool scalar_forced_by_env() {
  const char* v = std::getenv("BEES_FORCE_SCALAR");
  return v != nullptr && std::string(v) != "0";
}

SimdIsa probe() {
#if defined(BEES_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return SimdIsa::kAvx2;
#endif
#if defined(BEES_HAVE_NEON)
  return SimdIsa::kNeon;
#endif
  return SimdIsa::kScalar;
}

/// True when this build carries a kernel for `isa` and the CPU can run it.
bool supported(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
#if defined(BEES_HAVE_AVX2)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdIsa::kNeon:
#if defined(BEES_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

SimdIsa detected_simd_isa() {
  static const SimdIsa isa = probe();
  return isa;
}

SimdIsa active_simd_isa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced != kNoForce) return static_cast<SimdIsa>(forced);
  static const SimdIsa env_checked =
      scalar_forced_by_env() ? SimdIsa::kScalar : detected_simd_isa();
  return env_checked;
}

void force_simd_isa(SimdIsa isa) {
  if (!supported(isa)) isa = SimdIsa::kScalar;
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_forced_simd_isa() {
  g_forced.store(kNoForce, std::memory_order_relaxed);
}

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "scalar";
}

namespace detail {

LaneRowFn active_lane_rows() {
  switch (active_simd_isa()) {
#if defined(BEES_HAVE_AVX2)
    case SimdIsa::kAvx2:
      return &lane_rows_avx2;
#endif
#if defined(BEES_HAVE_NEON)
    case SimdIsa::kNeon:
      return &lane_rows_neon;
#endif
    default:
      return nullptr;
  }
}

}  // namespace detail

}  // namespace bees::feat
