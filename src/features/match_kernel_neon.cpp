// NEON lane kernel: one candidate descriptor per iteration as two 128-bit
// halves (lanes 0-1 and 2-3), popcount via vcntq_u8 with pairwise widening
// reductions — vpaddl u8->u16->u32->u64 sums each 8-byte half separately,
// so each uint64x2 result holds two per-lane Hamming distances, stored
// directly into the candidate-major sums buffer.  Compiled only on ARM
// builds (BEES_HAVE_NEON); NEON is baseline on AArch64, so no runtime
// probe is needed beyond the build gate.
#if defined(BEES_HAVE_NEON)

#include <arm_neon.h>

#include "features/match_lanes.hpp"

namespace bees::feat::detail {

namespace {

/// Popcounts of the two 64-bit words in `v`, one per output lane.
inline uint64x2_t popcount_words(uint64x2_t v) noexcept {
  const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(v));
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes)));
}

}  // namespace

void lane_rows_neon(const std::uint64_t q[4], const std::uint64_t* words,
                    std::size_t n, std::uint64_t* sums) {
  const uint64x2_t q01 = vld1q_u64(q);
  const uint64x2_t q23 = vld1q_u64(q + 2);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t* cand = words + kLaneBlock * j;
    const uint64x2_t d01 = popcount_words(veorq_u64(vld1q_u64(cand), q01));
    const uint64x2_t d23 =
        popcount_words(veorq_u64(vld1q_u64(cand + 2), q23));
    vst1q_u64(sums + kLaneBlock * j, d01);
    vst1q_u64(sums + kLaneBlock * j + 2, d23);
  }
}

}  // namespace bees::feat::detail

#endif  // BEES_HAVE_NEON
