// AVX2 lane kernel: one candidate descriptor per 256-bit vector (its four
// 64-bit lanes), popcount via the classic pshufb nibble lookup (Mula), and
// one _mm256_sad_epu8 against zero — SAD sums each 8-byte group
// separately, so its four 64-bit results are exactly the four per-lane
// Hamming distances, stored with a single aligned write.  Five vector
// instructions of real work per candidate, no cross-lane shuffles.
//
// This translation unit is the only one compiled with -mavx2, and it is
// only entered after the runtime CPU probe (features/simd.cpp) confirmed
// AVX2 — the rest of the library stays at the baseline ISA so the binary
// runs anywhere.
#if defined(BEES_HAVE_AVX2)

#include <immintrin.h>

#include "features/match_lanes.hpp"

namespace bees::feat::detail {

namespace {

/// Per-byte popcounts of each of the 32 bytes in `v`.
inline __m256i popcount_bytes(__m256i v) noexcept {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

}  // namespace

void lane_rows_avx2(const std::uint64_t q[4], const std::uint64_t* words,
                    std::size_t n, std::uint64_t* sums) {
  const __m256i qv =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q));
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t j = 0; j < n; ++j) {
    const __m256i cand = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(words + kLaneBlock * j));
    const __m256i diff = _mm256_xor_si256(cand, qv);
    const __m256i lane_sums = _mm256_sad_epu8(popcount_bytes(diff), zero);
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(sums + kLaneBlock * j), lane_sums);
  }
}

}  // namespace bees::feat::detail

#endif  // BEES_HAVE_AVX2
