// Internal contract between the matching kernel's scan loop and the
// vectorized lane kernels (match_kernel_avx2.cpp / match_kernel_neon.cpp).
// A lane kernel computes, for ONE query descriptor against EVERY packed
// candidate, the four per-lane Hamming sums the early-exit checkpoints
// consume:
//
//   sums[4j + l] = popcount(q[l] ^ b[j].bits[l])      l = 0..3
//
// The candidate words are CANDIDATE-major (descriptor j's four lanes
// contiguous at words[4j..4j+3], i.e. the natural Descriptor256 layout),
// which is what makes the AVX2 path one instruction per step: load the
// candidate, XOR with the broadcast query, byte-popcount, and one
// _mm256_sad_epu8 — whose four 64-bit group sums ARE the four lane sums —
// then store.  The decision scan replays the exact scalar checkpoint
// logic on the buffered sums (d0 = sums[4j], d12 = sums[4j+1]+sums[4j+2],
// d3 = sums[4j+3]), so matches, distances, `ops`, and the pruning
// counters are bit-identical to the fused scalar loop — the vector path
// trades the skipped lane arithmetic for branch-free streaming, which is
// the winning trade on wide cores.
//
// Both the candidate words and the sums buffer are kLaneAlignment-aligned
// (each candidate spans exactly one aligned 32-byte vector), so kernels
// always read and write full aligned vectors with no tail handling.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bees::feat::detail {

/// Packed-descriptor alignment: one AVX2 vector.  NEON needs 16; the
/// stricter bound serves both.
inline constexpr std::size_t kLaneAlignment = 32;
/// 64-bit words per descriptor: one 256-bit descriptor = one vector.
inline constexpr std::size_t kLaneBlock = 4;
static_assert(kLaneAlignment % sizeof(std::uint64_t) == 0);
static_assert(kLaneBlock * sizeof(std::uint64_t) == kLaneAlignment,
              "one packed descriptor is exactly one maximally aligned vector");

/// One query row worth of per-lane sums: fills sums[4j + l] for every
/// candidate j < n.  `words` (candidate-major, 4 words per candidate) and
/// `sums` (same shape) are both kLaneAlignment-aligned; `q` need not be.
using LaneRowFn = void (*)(const std::uint64_t q[4],
                           const std::uint64_t* words, std::size_t n,
                           std::uint64_t* sums);

#if defined(BEES_HAVE_AVX2)
void lane_rows_avx2(const std::uint64_t q[4], const std::uint64_t* words,
                    std::size_t n, std::uint64_t* sums);
#endif
#if defined(BEES_HAVE_NEON)
void lane_rows_neon(const std::uint64_t q[4], const std::uint64_t* words,
                    std::size_t n, std::uint64_t* sums);
#endif

/// The active ISA's row kernel, or nullptr when the scalar fused loop
/// should run (scalar forced, or no vector ISA in this build/CPU).
LaneRowFn active_lane_rows();

}  // namespace bees::feat::detail
