#include "features/fast.hpp"

#include <algorithm>
#include <cmath>

namespace bees::feat {

namespace {

// Bresenham circle of radius 3: the 16 offsets used by the segment test.
constexpr int kCircleX[16] = {0, 1, 2, 3, 3, 3, 2, 1, 0, -1, -2, -3, -3, -3, -2, -1};
constexpr int kCircleY[16] = {-3, -3, -2, -1, 0, 1, 2, 3, 3, 3, 2, 1, 0, -1, -2, -3};

/// Segment test: does a contiguous arc of >= 9 circle pixels sit entirely
/// `t` brighter or `t` darker than the center?  Returns the arc SAD score
/// (0 if not a corner).
float segment_score(const img::Image& im, int x, int y, int t) {
  const int center = im.at(x, y);
  int states[16];  // +1 brighter, -1 darker, 0 similar
  int diffs[16];
  for (int i = 0; i < 16; ++i) {
    const int v = im.at(x + kCircleX[i], y + kCircleY[i]);
    const int d = v - center;
    diffs[i] = std::abs(d);
    states[i] = d > t ? 1 : (d < -t ? -1 : 0);
  }
  // Scan the doubled circle for a run of >= 9 equal non-zero states.
  for (int want : {1, -1}) {
    int run = 0;
    float best = 0;
    float run_sum = 0;
    for (int i = 0; i < 32; ++i) {
      const int k = i & 15;
      if (states[k] == want) {
        ++run;
        run_sum += static_cast<float>(diffs[k]);
        if (run >= 9) best = std::max(best, run_sum);
        if (run >= 16) break;  // full circle
      } else {
        run = 0;
        run_sum = 0;
      }
    }
    if (best > 0) return best;
  }
  return 0;
}

}  // namespace

std::vector<Keypoint> detect_fast(const img::Image& gray,
                                  const FastParams& params,
                                  std::uint64_t* ops) {
  std::vector<Keypoint> out;
  const int b = std::max(params.border, 3);
  if (gray.width() <= 2 * b || gray.height() <= 2 * b) return out;

  // Response map for non-max suppression (0 = not a corner).
  std::vector<float> response(
      static_cast<std::size_t>(gray.width()) * gray.height(), 0.0f);
  std::uint64_t work = 0;
  for (int y = b; y < gray.height() - b; ++y) {
    for (int x = b; x < gray.width() - b; ++x) {
      // Quick rejection for the 9-contiguous test: an arc of >= 9 pixels
      // must contain at least 2 of the 4 compass points with the same
      // sign (the 3-of-4 variant is only valid for FAST-12).
      const int c = gray.at(x, y);
      int brighter = 0, darker = 0;
      for (int i : {0, 4, 8, 12}) {
        const int v = gray.at(x + kCircleX[i], y + kCircleY[i]);
        if (v - c > params.threshold) ++brighter;
        if (c - v > params.threshold) ++darker;
      }
      work += 8;
      if (brighter < 2 && darker < 2) continue;
      const float score = segment_score(gray, x, y, params.threshold);
      work += 64;
      if (score > 0) {
        response[static_cast<std::size_t>(y) * gray.width() + x] = score;
      }
    }
  }

  for (int y = b; y < gray.height() - b; ++y) {
    for (int x = b; x < gray.width() - b; ++x) {
      const float r =
          response[static_cast<std::size_t>(y) * gray.width() + x];
      if (r <= 0) continue;
      if (params.nonmax_suppression) {
        bool is_max = true;
        for (int dy = -1; dy <= 1 && is_max; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            if (response[static_cast<std::size_t>(y + dy) * gray.width() +
                         (x + dx)] > r) {
              is_max = false;
              break;
            }
          }
        }
        if (!is_max) continue;
      }
      Keypoint kp;
      kp.x = static_cast<float>(x);
      kp.y = static_cast<float>(y);
      kp.response = r;
      out.push_back(kp);
    }
  }
  if (ops) *ops += work;
  return out;
}

float harris_response(const img::Image& gray, int x, int y) {
  // Gradient second-moment matrix over a 7x7 window.
  double a = 0, bsum = 0, c = 0;
  for (int dy = -3; dy <= 3; ++dy) {
    for (int dx = -3; dx <= 3; ++dx) {
      const int xx = x + dx, yy = y + dy;
      const double ix = (gray.at_clamped(xx + 1, yy) -
                         gray.at_clamped(xx - 1, yy)) * 0.5;
      const double iy = (gray.at_clamped(xx, yy + 1) -
                         gray.at_clamped(xx, yy - 1)) * 0.5;
      a += ix * ix;
      bsum += ix * iy;
      c += iy * iy;
    }
  }
  constexpr double k = 0.04;
  const double det = a * c - bsum * bsum;
  const double trace = a + c;
  return static_cast<float>(det - k * trace * trace);
}

}  // namespace bees::feat
