#include "features/sift.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/transform.hpp"

namespace bees::feat {

namespace {

/// Float grayscale plane used for the scale space.
struct Planef {
  int w = 0, h = 0;
  std::vector<float> v;

  float at(int x, int y) const noexcept {
    x = std::clamp(x, 0, w - 1);
    y = std::clamp(y, 0, h - 1);
    return v[static_cast<std::size_t>(y) * w + x];
  }
};

Planef from_image(const img::Image& gray) {
  Planef p;
  p.w = gray.width();
  p.h = gray.height();
  p.v.resize(static_cast<std::size_t>(p.w) * p.h);
  for (int y = 0; y < p.h; ++y) {
    for (int x = 0; x < p.w; ++x) {
      p.v[static_cast<std::size_t>(y) * p.w + x] = gray.at(x, y);
    }
  }
  return p;
}

Planef blur(const Planef& src, double sigma, std::uint64_t* ops) {
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float norm = 0;
  for (int i = -radius; i <= radius; ++i) {
    const float val =
        std::exp(-0.5f * static_cast<float>(i * i) /
                 static_cast<float>(sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = val;
    norm += val;
  }
  for (auto& k : kernel) k /= norm;

  Planef tmp{src.w, src.h, std::vector<float>(src.v.size())};
  for (int y = 0; y < src.h; ++y) {
    for (int x = 0; x < src.w; ++x) {
      float acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] * src.at(x + i, y);
      }
      tmp.v[static_cast<std::size_t>(y) * src.w + x] = acc;
    }
  }
  Planef out{src.w, src.h, std::vector<float>(src.v.size())};
  for (int y = 0; y < src.h; ++y) {
    for (int x = 0; x < src.w; ++x) {
      float acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] * tmp.at(x, y + i);
      }
      out.v[static_cast<std::size_t>(y) * src.w + x] = acc;
    }
  }
  if (ops) {
    *ops += static_cast<std::uint64_t>(src.w) * static_cast<std::uint64_t>(
                src.h) * static_cast<std::uint64_t>(2 * (2 * radius + 1)) * 2;
  }
  return out;
}

Planef downsample2(const Planef& src) {
  Planef out;
  out.w = std::max(1, src.w / 2);
  out.h = std::max(1, src.h / 2);
  out.v.resize(static_cast<std::size_t>(out.w) * out.h);
  for (int y = 0; y < out.h; ++y) {
    for (int x = 0; x < out.w; ++x) {
      out.v[static_cast<std::size_t>(y) * out.w + x] = src.at(2 * x, 2 * y);
    }
  }
  return out;
}

struct Candidate {
  int x, y, octave, scale;
  float response;
};

/// Computes the dominant gradient orientation over a Gaussian-weighted
/// neighbourhood (36-bin histogram, as in Lowe §5).
float dominant_orientation(const Planef& plane, int x, int y, double sigma,
                           std::uint64_t* ops) {
  constexpr int kBins = 36;
  float hist[kBins] = {};
  const int radius = static_cast<int>(std::lround(3.0 * 1.5 * sigma));
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      const float gx = plane.at(x + dx + 1, y + dy) -
                       plane.at(x + dx - 1, y + dy);
      const float gy = plane.at(x + dx, y + dy + 1) -
                       plane.at(x + dx, y + dy - 1);
      const float mag = std::sqrt(gx * gx + gy * gy);
      const float ang = std::atan2(gy, gx);  // [-pi, pi]
      const float weight =
          std::exp(-0.5f * static_cast<float>(dx * dx + dy * dy) /
                   static_cast<float>(2.25 * sigma * sigma));
      int bin = static_cast<int>(
          std::floor((ang + static_cast<float>(M_PI)) /
                     (2 * static_cast<float>(M_PI)) * kBins));
      bin = std::clamp(bin, 0, kBins - 1);
      hist[bin] += mag * weight;
    }
  }
  if (ops) {
    *ops += static_cast<std::uint64_t>(2 * radius + 1) *
            static_cast<std::uint64_t>(2 * radius + 1) * 12;
  }
  // Circular smoothing stabilizes the peak under small rotations (Lowe §5).
  float smoothed[kBins];
  for (int i = 0; i < kBins; ++i) {
    smoothed[i] = 0.25f * hist[(i + kBins - 1) % kBins] + 0.5f * hist[i] +
                  0.25f * hist[(i + 1) % kBins];
  }
  int best = 0;
  for (int i = 1; i < kBins; ++i) {
    if (smoothed[i] > smoothed[best]) best = i;
  }
  // Parabolic interpolation of the peak for sub-bin accuracy.
  const float l = smoothed[(best + kBins - 1) % kBins];
  const float c = smoothed[best];
  const float r = smoothed[(best + 1) % kBins];
  float offset = 0.0f;
  const float denom = l - 2 * c + r;
  if (std::abs(denom) > 1e-9f) offset = 0.5f * (l - r) / denom;
  const float bin = static_cast<float>(best) + 0.5f + offset;
  return bin / kBins * 2 * static_cast<float>(M_PI) -
         static_cast<float>(M_PI);
}

/// 4x4 spatial cells x 8 orientation bins over a 16x16 patch rotated to the
/// keypoint orientation, with trilinear soft-assignment across the two
/// spatial axes and the orientation axis (Lowe §6.1) — the standard
/// robustness measure against small rotations and shifts.  Normalized,
/// clamped at 0.2, renormalized.
void compute_descriptor(const Planef& plane, int x, int y, float angle,
                        float* out128, std::uint64_t* ops) {
  std::fill(out128, out128 + 128, 0.0f);
  const float cosa = std::cos(angle);
  const float sina = std::sin(angle);
  constexpr float kTwoPi = 2 * static_cast<float>(M_PI);
  for (int dy = -8; dy < 8; ++dy) {
    for (int dx = -8; dx < 8; ++dx) {
      // Rotate the sample offset into the keypoint frame.
      const float rx = cosa * dx + sina * dy;
      const float ry = -sina * dx + cosa * dy;
      const int sx = x + static_cast<int>(std::lround(rx));
      const int sy = y + static_cast<int>(std::lround(ry));
      const float gx = plane.at(sx + 1, sy) - plane.at(sx - 1, sy);
      const float gy = plane.at(sx, sy + 1) - plane.at(sx, sy - 1);
      const float mag = std::sqrt(gx * gx + gy * gy);
      float ang = std::atan2(gy, gx) - angle;
      while (ang < 0) ang += kTwoPi;
      while (ang >= kTwoPi) ang -= kTwoPi;
      // Continuous bin coordinates; each sample spreads over the 2x2x2
      // neighbouring bins with bilinear weights.
      const float cx = (static_cast<float>(dx) + 8.0f) / 4.0f - 0.5f;
      const float cy = (static_cast<float>(dy) + 8.0f) / 4.0f - 0.5f;
      const float co = ang / kTwoPi * 8.0f - 0.5f;
      const int x0 = static_cast<int>(std::floor(cx));
      const int y0 = static_cast<int>(std::floor(cy));
      const int o0 = static_cast<int>(std::floor(co));
      const float fx = cx - static_cast<float>(x0);
      const float fy = cy - static_cast<float>(y0);
      const float fo = co - static_cast<float>(o0);
      for (int ix = 0; ix <= 1; ++ix) {
        const int bx = x0 + ix;
        if (bx < 0 || bx > 3) continue;
        const float wx = ix ? fx : 1.0f - fx;
        for (int iy = 0; iy <= 1; ++iy) {
          const int by = y0 + iy;
          if (by < 0 || by > 3) continue;
          const float wy = iy ? fy : 1.0f - fy;
          for (int io = 0; io <= 1; ++io) {
            const int bo = ((o0 + io) % 8 + 8) % 8;  // orientation wraps
            const float wo = io ? fo : 1.0f - fo;
            out128[(by * 4 + bx) * 8 + bo] += mag * wx * wy * wo;
          }
        }
      }
    }
  }
  if (ops) *ops += 16 * 16 * 30;
  // Normalize -> clamp -> renormalize (illumination invariance).
  auto normalize = [&] {
    float norm = 0;
    for (int i = 0; i < 128; ++i) norm += out128[i] * out128[i];
    norm = std::sqrt(norm);
    if (norm > 1e-6f) {
      for (int i = 0; i < 128; ++i) out128[i] /= norm;
    }
  };
  normalize();
  for (int i = 0; i < 128; ++i) out128[i] = std::min(out128[i], 0.2f);
  normalize();
}

}  // namespace

FloatFeatures extract_sift(const img::Image& image, const SiftParams& params) {
  FloatFeatures out;
  out.dim = 128;
  img::Image gray = img::to_gray(image);
  out.stats.ops += gray.pixel_count() * 3;
  double coord_scale = 1.0;
  if (params.upsample_first_octave) {
    gray = img::resize(gray, gray.width() * 2, gray.height() * 2);
    out.stats.ops += gray.pixel_count() * 4;
    coord_scale = 0.5;
  }

  Planef base = from_image(gray);
  const int s = params.scales_per_octave;
  const double k = std::pow(2.0, 1.0 / s);

  std::vector<Candidate> candidates;
  std::vector<std::vector<Planef>> octave_blurs;

  Planef current = base;
  for (int octave = 0; octave < params.octaves; ++octave) {
    if (current.w < 32 || current.h < 32) break;
    // Build s+3 progressively blurred planes for this octave.
    std::vector<Planef> blurs;
    blurs.push_back(blur(current, params.sigma0, &out.stats.ops));
    for (int i = 1; i < s + 3; ++i) {
      const double sig_prev = params.sigma0 * std::pow(k, i - 1);
      const double sig_total = params.sigma0 * std::pow(k, i);
      const double sig_diff =
          std::sqrt(sig_total * sig_total - sig_prev * sig_prev);
      blurs.push_back(blur(blurs.back(), sig_diff, &out.stats.ops));
    }
    // DoG planes and 3x3x3 extrema.
    std::vector<Planef> dog;
    for (int i = 0; i + 1 < static_cast<int>(blurs.size()); ++i) {
      Planef d{current.w, current.h,
               std::vector<float>(current.v.size())};
      for (std::size_t j = 0; j < d.v.size(); ++j) {
        d.v[j] = blurs[static_cast<std::size_t>(i + 1)].v[j] -
                 blurs[static_cast<std::size_t>(i)].v[j];
      }
      out.stats.ops += d.v.size();
      dog.push_back(std::move(d));
    }
    for (int si = 1; si + 1 < static_cast<int>(dog.size()); ++si) {
      const Planef& d = dog[static_cast<std::size_t>(si)];
      for (int y = 9; y < current.h - 9; ++y) {
        for (int x = 9; x < current.w - 9; ++x) {
          const float v = d.at(x, y);
          if (std::abs(v) < params.contrast_threshold) continue;
          bool is_max = true, is_min = true;
          for (int ds = -1; ds <= 1 && (is_max || is_min); ++ds) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                if (ds == 0 && dy == 0 && dx == 0) continue;
                const float nv =
                    dog[static_cast<std::size_t>(si + ds)].at(x + dx, y + dy);
                if (nv >= v) is_max = false;
                if (nv <= v) is_min = false;
              }
            }
          }
          if (!is_max && !is_min) continue;
          // Edge rejection (Lowe §4.1): keypoints on straight edges have a
          // large principal-curvature ratio; reject when
          // tr^2/det > (r+1)^2/r with r = 10.
          const float dxx = d.at(x + 1, y) + d.at(x - 1, y) - 2 * v;
          const float dyy = d.at(x, y + 1) + d.at(x, y - 1) - 2 * v;
          const float dxy = 0.25f * (d.at(x + 1, y + 1) - d.at(x - 1, y + 1) -
                                     d.at(x + 1, y - 1) + d.at(x - 1, y - 1));
          const float trace = dxx + dyy;
          const float det = dxx * dyy - dxy * dxy;
          constexpr float kEdgeRatio = 10.0f;
          constexpr float kEdgeBound =
              (kEdgeRatio + 1) * (kEdgeRatio + 1) / kEdgeRatio;
          if (det <= 0 || trace * trace / det > kEdgeBound) continue;
          candidates.push_back({x, y, octave, si, std::abs(v)});
        }
      }
      out.stats.ops += static_cast<std::uint64_t>(current.w) *
                       static_cast<std::uint64_t>(current.h) * 6;
    }
    octave_blurs.push_back(std::move(blurs));
    current = downsample2(current);
  }

  // Keep the strongest candidates.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.response > b.response;
            });
  if (candidates.size() > static_cast<std::size_t>(params.max_features)) {
    candidates.resize(static_cast<std::size_t>(params.max_features));
  }

  for (const Candidate& c : candidates) {
    const Planef& plane =
        octave_blurs[static_cast<std::size_t>(c.octave)]
                    [static_cast<std::size_t>(c.scale)];
    const double sigma = params.sigma0 * std::pow(k, c.scale);
    const float angle =
        dominant_orientation(plane, c.x, c.y, sigma, &out.stats.ops);
    float desc[128];
    compute_descriptor(plane, c.x, c.y, angle, desc, &out.stats.ops);
    Keypoint kp;
    const auto scale_up =
        static_cast<float>((1 << c.octave) * coord_scale);
    kp.x = static_cast<float>(c.x) * scale_up;
    kp.y = static_cast<float>(c.y) * scale_up;
    kp.response = c.response;
    kp.angle = angle;
    kp.level = c.octave;
    kp.scale = scale_up;
    out.keypoints.push_back(kp);
    out.values.insert(out.values.end(), desc, desc + 128);
  }
  out.stats.keypoint_count = out.size();
  return out;
}

}  // namespace bees::feat
