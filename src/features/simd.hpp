// Runtime ISA dispatch for the descriptor-matching kernel.  The scalar SWAR
// path is always built and always correct; explicit AVX2 (x86) and NEON
// (ARM) lane kernels are compiled when the toolchain supports them and
// selected once per process after a CPU-feature probe.  Every path is
// bit-exact with the others — same matches, distances, modeled `ops`, and
// `feat.match.lanes_{examined,pruned}` counters — so dispatch is purely a
// throughput decision (see DESIGN.md §13 for the equivalence argument).
//
// Overrides, strongest first:
//  * force_simd_isa(isa) — programmatic pin, used by the differential
//    property tests and the ISA-dispatch bench smoke.
//  * BEES_FORCE_SCALAR environment variable (any value but "0") — forces
//    the scalar SWAR kernel, the knob differential harnesses use to diff a
//    production binary against its own fallback.
//  * CPU probe: AVX2 when the CPU reports it, NEON on ARM builds, scalar
//    otherwise.
#pragma once

namespace bees::feat {

enum class SimdIsa {
  kScalar = 0,  ///< Portable SWAR popcount (always available).
  kAvx2 = 1,    ///< 4 candidates per 256-bit vector, pshufb popcount.
  kNeon = 2,    ///< 2 candidates per 128-bit vector, vcnt popcount.
};

/// The ISA the kernel will actually run: the forced override if one is
/// set, else scalar under BEES_FORCE_SCALAR, else the best ISA this CPU
/// and build support.  Cheap (one relaxed atomic load after first call).
SimdIsa active_simd_isa();

/// The best ISA the probe found, ignoring overrides.
SimdIsa detected_simd_isa();

/// Pins the active ISA for this process (tests / bench smoke).  Pinning an
/// ISA the build or CPU does not support falls back to scalar.  Pass
/// reset=true via clear_forced_simd_isa() to return to the probe.
void force_simd_isa(SimdIsa isa);
void clear_forced_simd_isa();

/// Stable lowercase name: "scalar", "avx2", "neon".
const char* simd_isa_name(SimdIsa isa);

}  // namespace bees::feat
