#include "features/similarity.hpp"

#include <algorithm>

#include "features/match_kernel.hpp"

namespace bees::feat {

double jaccard_from_matches(std::size_t size_a, std::size_t size_b,
                            std::size_t match_count) noexcept {
  const std::size_t union_size = size_a + size_b - match_count;
  if (union_size == 0) return 0.0;
  // A match count can't exceed the smaller set, but guard anyway.
  const std::size_t inter = std::min(match_count, std::min(size_a, size_b));
  return static_cast<double>(inter) / static_cast<double>(union_size);
}

double jaccard_similarity(const BinaryFeatures& a, const BinaryFeatures& b,
                          const BinaryMatchParams& params,
                          std::uint64_t* ops) {
  const auto matches = match_binary(a.descriptors, b.descriptors, params, ops);
  return jaccard_from_matches(a.size(), b.size(), matches.size());
}

double jaccard_similarity(const BinaryFeatures& a, const BinaryFeatures& b,
                          const BinaryMatchParams& params, std::uint64_t* ops,
                          MatchWorkspace& workspace) {
  const std::size_t matched =
      match_binary_count(a.descriptors, b.descriptors, params, ops, workspace);
  return jaccard_from_matches(a.size(), b.size(), matched);
}

double jaccard_similarity(const FloatFeatures& a, const FloatFeatures& b,
                          const FloatMatchParams& params,
                          std::uint64_t* ops) {
  const auto matches = match_float(a, b, params, ops);
  return jaccard_from_matches(a.size(), b.size(), matches.size());
}

}  // namespace bees::feat
