#include "features/similarity.hpp"

#include <algorithm>

#include "features/match_kernel.hpp"

namespace bees::feat {

double jaccard_from_matches(std::size_t size_a, std::size_t size_b,
                            std::size_t match_count) noexcept {
  const std::size_t union_size = size_a + size_b - match_count;
  if (union_size == 0) return 0.0;
  // A match count can't exceed the smaller set, but guard anyway.
  const std::size_t inter = std::min(match_count, std::min(size_a, size_b));
  return static_cast<double>(inter) / static_cast<double>(union_size);
}

double jaccard_similarity(const BinaryFeatures& a, const BinaryFeatures& b,
                          const BinaryMatchParams& params,
                          std::uint64_t* ops) {
  const auto matches = match_binary(a.descriptors, b.descriptors, params, ops);
  return jaccard_from_matches(a.size(), b.size(), matches.size());
}

double jaccard_similarity(const BinaryFeatures& a, const BinaryFeatures& b,
                          const BinaryMatchParams& params, std::uint64_t* ops,
                          MatchWorkspace& workspace) {
  const std::size_t matched =
      match_binary_count(a.descriptors, b.descriptors, params, ops, workspace);
  return jaccard_from_matches(a.size(), b.size(), matched);
}

void jaccard_similarity_batch(const std::vector<const BinaryFeatures*>& queries,
                              const BinaryFeatures& b,
                              const BinaryMatchParams& params, double* sims,
                              std::uint64_t* ops, MatchWorkspace& workspace) {
  const std::size_t nq = queries.size();
  if (nq == 0) return;
  std::vector<const std::vector<Descriptor256>*> batch(nq);
  for (std::size_t k = 0; k < nq; ++k) batch[k] = &queries[k]->descriptors;
  std::vector<std::size_t> counts(nq, 0);
  match_binary_count_batch(batch, b.descriptors, params, counts.data(), ops,
                           workspace);
  for (std::size_t k = 0; k < nq; ++k) {
    sims[k] = jaccard_from_matches(queries[k]->size(), b.size(), counts[k]);
  }
}

double jaccard_similarity(const FloatFeatures& a, const FloatFeatures& b,
                          const FloatMatchParams& params,
                          std::uint64_t* ops) {
  const auto matches = match_float(a, b, params, ops);
  return jaccard_from_matches(a.size(), b.size(), matches.size());
}

}  // namespace bees::feat
