// Principal component analysis used to turn SIFT descriptors into the
// compact PCA-SIFT representation (Ke & Sukthankar, CVPR 2004): a 36-D
// projection learned from a training corpus of 128-D descriptors.
#pragma once

#include <vector>

#include "features/keypoint.hpp"

namespace bees::feat {

/// A learned linear projection: y = B (x - mean), where B is
/// output_dim x input_dim with orthonormal rows (leading eigenvectors of the
/// training covariance).
class PcaModel {
 public:
  /// Fits the top `output_dim` principal components of `rows` (each row has
  /// `input_dim` values; rows.size() must be a multiple of input_dim).
  /// Eigenvectors are obtained by cyclic Jacobi rotation of the covariance.
  /// Throws std::invalid_argument for empty input or output_dim > input_dim.
  static PcaModel fit(const std::vector<float>& rows, int input_dim,
                      int output_dim);

  /// Projects one vector (length input_dim) to output_dim values.
  std::vector<float> project(const float* x) const;

  /// Projects every descriptor of a FloatFeatures set, preserving keypoints
  /// and accumulating projection work into stats.ops.
  FloatFeatures project_features(const FloatFeatures& in) const;

  int input_dim() const noexcept { return input_dim_; }
  int output_dim() const noexcept { return output_dim_; }
  /// Fraction of training variance captured by the retained components.
  double explained_variance() const noexcept { return explained_; }

 private:
  int input_dim_ = 0;
  int output_dim_ = 0;
  std::vector<float> mean_;   // input_dim
  std::vector<float> basis_;  // output_dim x input_dim, row-major
  double explained_ = 0.0;
};

/// Fits a PCA-SIFT model (128 -> 36) from the SIFT descriptors of a set of
/// training images' features, the offline step of Ke & Sukthankar.
PcaModel fit_pca_sift(const std::vector<FloatFeatures>& training_sets,
                      int output_dim = 36);

}  // namespace bees::feat
