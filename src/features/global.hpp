// Global image features: a color histogram descriptor of the whole image.
// The paper (§III-D) contrasts these with local features — cheap and
// compact but less robust — and the MRC baseline it compares against
// (Dao et al., CoNEXT 2014) actually combines BOTH: a global-feature
// prefilter narrows candidates before local features confirm.  This module
// provides that global stage; the MRC scheme uses it as its first-stage
// filter, and PhotoNet-style metadata dedup can be built on it directly.
#pragma once

#include <array>
#include <cstdint>

#include "imaging/image.hpp"

namespace bees::feat {

/// A normalized color histogram: `kBinsPerChannel`^3 RGB cells (4x4x4 = 64
/// bins), L1-normalized.  ~256 B on the wire as 32-bit floats.
struct ColorHistogram {
  static constexpr int kBinsPerChannel = 4;
  static constexpr int kBins =
      kBinsPerChannel * kBinsPerChannel * kBinsPerChannel;

  std::array<float, kBins> bins{};

  bool operator==(const ColorHistogram&) const noexcept = default;
};

/// Computes the histogram of an RGB image (a grayscale input populates the
/// gray diagonal cells).  `ops` (if non-null) accumulates the work done —
/// one pass over the pixels, orders cheaper than any local extractor.
ColorHistogram color_histogram(const img::Image& image,
                               std::uint64_t* ops = nullptr);

/// Histogram intersection similarity in [0, 1]: sum of min(a_i, b_i).
/// 1 means identical color distributions.
double histogram_intersection(const ColorHistogram& a,
                              const ColorHistogram& b) noexcept;

/// Chi-squared distance (>= 0, 0 = identical); the common alternative
/// metric, exposed for the prefilter ablation.
double histogram_chi2(const ColorHistogram& a,
                      const ColorHistogram& b) noexcept;

}  // namespace bees::feat
