#include "features/global.hpp"

#include <algorithm>

namespace bees::feat {

ColorHistogram color_histogram(const img::Image& image, std::uint64_t* ops) {
  ColorHistogram h;
  if (image.empty()) return h;
  constexpr int kShift = 8 - 2;  // 256 levels -> 4 bins per channel
  const int w = image.width(), height = image.height();
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < w; ++x) {
      int r, g, b;
      if (image.is_gray()) {
        r = g = b = image.at(x, y, 0) >> kShift;
      } else {
        r = image.at(x, y, 0) >> kShift;
        g = image.at(x, y, 1) >> kShift;
        b = image.at(x, y, 2) >> kShift;
      }
      const int bin = (r * ColorHistogram::kBinsPerChannel + g) *
                          ColorHistogram::kBinsPerChannel +
                      b;
      h.bins[static_cast<std::size_t>(bin)] += 1.0f;
    }
  }
  const auto total = static_cast<float>(image.pixel_count());
  for (auto& v : h.bins) v /= total;
  if (ops) *ops += image.pixel_count() * 4;
  return h;
}

double histogram_intersection(const ColorHistogram& a,
                              const ColorHistogram& b) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    sum += std::min(a.bins[i], b.bins[i]);
  }
  return sum;
}

double histogram_chi2(const ColorHistogram& a,
                      const ColorHistogram& b) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    const double s = a.bins[i] + b.bins[i];
    if (s <= 0.0) continue;
    const double d = a.bins[i] - b.bins[i];
    sum += d * d / s;
  }
  return 0.5 * sum;
}

}  // namespace bees::feat
