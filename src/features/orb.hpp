// ORB feature extraction (Rublee et al., ICCV 2011) built from scratch:
// scale pyramid -> FAST-9 with Harris re-ranking -> intensity-centroid
// orientation -> steered BRIEF-256 binary descriptors.
//
// This is the extractor BEES itself uses (paper §III-D selects ORB for its
// two-orders-lower cost than SIFT).  The extractor counts its own arithmetic
// work so the energy model can charge extraction joules proportional to the
// image area actually processed — the mechanism behind the EAC scheme.
#pragma once

#include "features/keypoint.hpp"
#include "imaging/image.hpp"

namespace bees::feat {

struct OrbParams {
  int max_features = 400;     ///< Total descriptor budget across levels.
  int levels = 6;             ///< Pyramid levels.
  double scale_factor = 1.25; ///< Per-level downscale factor.
  /// FAST arc threshold.  High enough to reject low-contrast texture
  /// corners (which do not repeat across views) while keeping shape
  /// corners and detail marks.
  int fast_threshold = 28;
  int patch_radius = 15;      ///< Orientation/descriptor patch (31x31).
};

/// Extracts ORB features from an RGB or grayscale image.
BinaryFeatures extract_orb(const img::Image& image,
                           const OrbParams& params = {});

/// Intensity-centroid orientation of the patch centred at integer (x, y):
/// atan2 of the first image moments over a circular patch.  Exposed for
/// testing (a rotated patch must produce a rotated angle).
float intensity_centroid_angle(const img::Image& gray, int x, int y,
                               int radius);

}  // namespace bees::feat
