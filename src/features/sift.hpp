// SIFT-style feature extraction (Lowe, IJCV 2004), simplified but faithful
// in structure: Gaussian scale space -> DoG extrema -> gradient-orientation
// keypoints -> 4x4x8 = 128-D descriptors.  Serves as the high-accuracy,
// high-cost baseline of the paper (used by itself and, projected through
// PCA, as the PCA-SIFT used by SmartEye).
#pragma once

#include "features/keypoint.hpp"
#include "imaging/image.hpp"

namespace bees::feat {

struct SiftParams {
  int octaves = 3;             ///< Scale-space octaves.
  int scales_per_octave = 3;   ///< Intervals per octave (s); s+3 blurs built.
  double sigma0 = 1.6;         ///< Base blur.
  double contrast_threshold = 4.0;  ///< Min |DoG| response (0..255 scale).
  int max_features = 400;      ///< Strongest keypoints kept.
  /// Double the input first (Lowe's "-1 octave", §3.3): more keypoints and
  /// the authentic cost profile (4x the base-octave convolution work).
  bool upsample_first_octave = true;
};

/// Extracts 128-D SIFT-style features.  stats.ops counts the convolution
/// and descriptor arithmetic actually performed, which is what makes SIFT
/// roughly two orders of magnitude more expensive than ORB here, as in the
/// paper's §III-D comparison.
FloatFeatures extract_sift(const img::Image& image,
                           const SiftParams& params = {});

}  // namespace bees::feat
