// FAST-9 corner detection (Rosten & Drummond) with a Harris corner measure
// for ranking, as used by the ORB pipeline.
#pragma once

#include <vector>

#include "features/keypoint.hpp"
#include "imaging/image.hpp"

namespace bees::feat {

struct FastParams {
  int threshold = 20;          ///< Intensity difference for the arc test.
  bool nonmax_suppression = true;
  int border = 16;             ///< Pixels skipped at the image border (must
                               ///< cover the descriptor patch radius).
};

/// Detects FAST-9 corners in a grayscale image.  The response is the sum of
/// absolute differences over the contiguous arc (used for non-max
/// suppression).  `ops` (if non-null) accumulates the arithmetic work done,
/// feeding the energy model.
std::vector<Keypoint> detect_fast(const img::Image& gray,
                                  const FastParams& params,
                                  std::uint64_t* ops = nullptr);

/// Harris corner response at (x, y) computed over a 7x7 window of Sobel
/// gradients; used to re-rank FAST corners (the "oFAST" ordering in ORB).
float harris_response(const img::Image& gray, int x, int y);

}  // namespace bees::feat
