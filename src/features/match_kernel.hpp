// Fast binary-descriptor matching kernel: the optimized hot path behind
// match_binary / jaccard_similarity (paper Eq. 2).  Bit-exact with the
// naive reference matcher (match_binary_naive) — same matches, same
// distances, same modeled `ops` — but cheaper:
//
//  * Transposed (structure-of-arrays) packing: the candidate set's four
//    64-bit lanes are split into four contiguous arrays, packed once per
//    feature set instead of never, so the lane-0 scan streams one dense
//    array and pruned pairs never touch the other three.
//  * Cross-check in one pass: the naive matcher computes the full Hamming
//    matrix twice (forward a->b, then reverse b->a).  The kernel streams
//    each row once and maintains best/second-best for both the row (a_i
//    against all b) and every column (b_j against all a seen so far),
//    halving the descriptor-comparison work for the default mutual-check
//    path.  Tie handling is identical in both directions: the first
//    strictly-smaller index wins.
//  * Running-bound early exit: after the first 64-bit lane, a pair whose
//    partial distance already reaches the row's *and* the column's
//    second-best bound cannot update either side (the full distance only
//    grows), so lanes 1-3 are skipped.  The pruning is exact — it can
//    never change a winner — and the lane work actually saved is reported
//    via the obs counters `feat.match.lanes_examined` /
//    `feat.match.lanes_pruned` (the energy model's `ops` keeps counting
//    modeled comparisons exactly like the naive matcher).
//
// A MatchWorkspace owns every buffer the kernel needs, so rescore / graph
// loops that match one query against many candidates reuse allocations
// across calls instead of reallocating per pair.
#pragma once

#include <cstdint>
#include <vector>

#include "features/keypoint.hpp"
#include "features/matching.hpp"

namespace bees::feat {

/// Transposed copy of a descriptor set: lane `l` of descriptor `j` lives at
/// lane(l)[j], so a scan over one lane of every descriptor is a dense
/// sequential read.
class PackedDescriptors {
 public:
  /// Re-packs `descriptors`, reusing the previous allocation when possible.
  void assign(const std::vector<Descriptor256>& descriptors);

  std::size_t size() const noexcept { return size_; }
  const std::uint64_t* lane(std::size_t l) const noexcept {
    return lanes_.data() + l * size_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> lanes_;  ///< 4 * size_, lane-major.
};

/// Reusable scratch buffers for match_binary_kernel.  One workspace serves
/// any sequence of calls (sizes may differ per call); it is not safe to
/// share one workspace between threads — give each worker its own.
class MatchWorkspace {
 public:
  MatchWorkspace() = default;

 private:
  friend struct MatchKernelImpl;

  PackedDescriptors packed_b_;
  // Forward pass (one slot per descriptor of `a`).
  std::vector<std::size_t> fwd_;   ///< Gated nearest index in b, or npos.
  std::vector<int> fwd_dist_;      ///< Hamming distance of that match.
  // Reverse pass (one slot per descriptor of `b`).
  std::vector<int> col_best_;
  std::vector<int> col_second_;
  std::vector<std::size_t> col_best_i_;
};

/// Drop-in replacement for match_binary_naive: identical matches,
/// distances, and `ops` accounting, computed with the packed kernel.
std::vector<Match> match_binary_kernel(const std::vector<Descriptor256>& a,
                                       const std::vector<Descriptor256>& b,
                                       const BinaryMatchParams& params,
                                       std::uint64_t* ops,
                                       MatchWorkspace& workspace);

/// Number of matches match_binary_kernel would return, without
/// materializing the match vector — the allocation-free path behind the
/// workspace overload of jaccard_similarity.
std::size_t match_binary_count(const std::vector<Descriptor256>& a,
                               const std::vector<Descriptor256>& b,
                               const BinaryMatchParams& params,
                               std::uint64_t* ops,
                               MatchWorkspace& workspace);

}  // namespace bees::feat
