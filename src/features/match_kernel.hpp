// Fast binary-descriptor matching kernel: the optimized hot path behind
// match_binary / jaccard_similarity (paper Eq. 2).  Bit-exact with the
// naive reference matcher (match_binary_naive) — same matches, same
// distances, same modeled `ops` — but cheaper:
//
//  * Transposed (structure-of-arrays) packing: the candidate set's four
//    64-bit lanes are split into four contiguous arrays, packed once per
//    feature set instead of never, so the lane-0 scan streams one dense
//    array and pruned pairs never touch the other three.  A candidate-major
//    copy sits beside it for the vector kernels; both live in 32-byte-
//    aligned storage, so SIMD always issues full aligned loads.
//  * Cross-check in one pass: the naive matcher computes the full Hamming
//    matrix twice (forward a->b, then reverse b->a).  The kernel streams
//    each row once and maintains best/second-best for both the row (a_i
//    against all b) and every column (b_j against all a seen so far),
//    halving the descriptor-comparison work for the default mutual-check
//    path.  Tie handling is identical in both directions: the first
//    strictly-smaller index wins.
//  * Running-bound early exit: after the first 64-bit lane, a pair whose
//    partial distance already reaches the row's *and* the column's
//    second-best bound cannot update either side (the full distance only
//    grows), so lanes 1-3 are skipped.  The pruning is exact — it can
//    never change a winner — and the lane work actually saved is reported
//    via the obs counters `feat.match.lanes_examined` /
//    `feat.match.lanes_pruned` (the energy model's `ops` keeps counting
//    modeled comparisons exactly like the naive matcher).
//  * Runtime ISA dispatch (features/simd.hpp): on CPUs with AVX2 (or ARM
//    builds with NEON) the per-row lane sums are computed branch-free by a
//    vector kernel into workspace buffers, and a scalar decision scan
//    replays the exact checkpoint logic on the buffered sums — so the
//    modeled counters, matches, and distances stay bit-identical to the
//    scalar SWAR fused loop, which remains the always-built fallback
//    (BEES_FORCE_SCALAR pins it for differential tests).
//
// A MatchWorkspace owns every buffer the kernel needs, so rescore / graph
// loops that match one query against many candidates reuse allocations
// across calls instead of reallocating per pair.  The *_batch entry points
// additionally amortize candidate packing across many queries — the core
// primitive of the batched multi-query rescore plane.
#pragma once

#include <cstdint>
#include <vector>

#include "features/keypoint.hpp"
#include "features/match_lanes.hpp"
#include "features/matching.hpp"
#include "util/aligned.hpp"

namespace bees::feat {

/// Packed copy of a descriptor set in both layouts the kernel scans:
///
///  * Lane-major (transposed, structure-of-arrays): lane `l` of descriptor
///    `j` lives at lane(l)[j], so the scalar fused loop's lane-0 scan
///    streams one dense array and pruned pairs never touch the other
///    three.  Each lane is padded to detail::kLaneBlock words with zeros.
///  * Candidate-major: descriptor `j`'s four lanes are contiguous at
///    words()[4j..4j+3] — the natural Descriptor256 layout — so a vector
///    kernel reads each candidate as one aligned 256-bit load.
///
/// Both live in detail::kLaneAlignment-aligned storage; every lane and
/// every candidate starts on an aligned boundary.
class PackedDescriptors {
 public:
  /// Re-packs `descriptors`, reusing the previous allocation when possible.
  void assign(const std::vector<Descriptor256>& descriptors);

  std::size_t size() const noexcept { return size_; }
  /// size() rounded up to a whole lane block (the per-lane buffer length).
  std::size_t padded_size() const noexcept { return padded_; }
  const std::uint64_t* lane(std::size_t l) const noexcept {
    return lanes_.data() + l * padded_;
  }
  /// Candidate-major words (detail::kLaneBlock per descriptor), handed to
  /// the vector lane kernels.
  const std::uint64_t* words() const noexcept { return words_.data(); }

 private:
  std::size_t size_ = 0;
  std::size_t padded_ = 0;
  util::AlignedBuffer<std::uint64_t, detail::kLaneAlignment> lanes_;
  util::AlignedBuffer<std::uint64_t, detail::kLaneAlignment> words_;
};

/// Reusable scratch buffers for match_binary_kernel.  One workspace serves
/// any sequence of calls (sizes may differ per call); it is not safe to
/// share one workspace between threads — give each worker its own.
class MatchWorkspace {
 public:
  MatchWorkspace() = default;

 private:
  friend struct MatchKernelImpl;

  PackedDescriptors packed_b_;
  // Forward pass (one slot per descriptor of `a`).
  std::vector<std::size_t> fwd_;   ///< Gated nearest index in b, or npos.
  std::vector<int> fwd_dist_;      ///< Hamming distance of that match.
  // Reverse pass (one slot per descriptor of `b`).
  std::vector<int> col_best_;
  std::vector<int> col_second_;
  std::vector<std::size_t> col_best_i_;
  // SIMD row buffer (detail::kLaneBlock slots per candidate): per-lane
  // Hamming sums of the current query row, filled by the vector lane
  // kernel with aligned stores and consumed by the scalar decision scan.
  util::AlignedBuffer<std::uint64_t, detail::kLaneAlignment> row_sums_;
};

/// Drop-in replacement for match_binary_naive: identical matches,
/// distances, and `ops` accounting, computed with the packed kernel.
std::vector<Match> match_binary_kernel(const std::vector<Descriptor256>& a,
                                       const std::vector<Descriptor256>& b,
                                       const BinaryMatchParams& params,
                                       std::uint64_t* ops,
                                       MatchWorkspace& workspace);

/// Number of matches match_binary_kernel would return, without
/// materializing the match vector — the allocation-free path behind the
/// workspace overload of jaccard_similarity.
std::size_t match_binary_count(const std::vector<Descriptor256>& a,
                               const std::vector<Descriptor256>& b,
                               const BinaryMatchParams& params,
                               std::uint64_t* ops,
                               MatchWorkspace& workspace);

/// Batched variant of match_binary_count: matches every query in `batch`
/// against the same candidate set `b`, packing `b` once instead of once
/// per query.  For each query k, counts[k] and (when `ops` is non-null)
/// ops[k] receive exactly what
///   match_binary_count(*batch[k], b, params, &ops[k], workspace)
/// would have produced — the batch plane is an amortization, never a
/// semantic change.  `counts` and (if given) `ops` must hold batch.size()
/// slots; ops slots are accumulated into, matching the single-query API.
void match_binary_count_batch(
    const std::vector<const std::vector<Descriptor256>*>& batch,
    const std::vector<Descriptor256>& b, const BinaryMatchParams& params,
    std::size_t* counts, std::uint64_t* ops, MatchWorkspace& workspace);

}  // namespace bees::feat
