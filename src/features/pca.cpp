#include "features/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bees::feat {

namespace {

/// Cyclic Jacobi eigendecomposition of a symmetric matrix `a` (n x n,
/// row-major, destroyed).  Returns eigenvalues; `vecs` receives the
/// eigenvectors as columns.
std::vector<double> jacobi_eigen(std::vector<double>& a, int n,
                                 std::vector<double>& vecs) {
  vecs.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) vecs[static_cast<std::size_t>(i) * n + i] = 1.0;
  auto at = [&](std::vector<double>& m, int r, int c) -> double& {
    return m[static_cast<std::size_t>(r) * n + c];
  };
  constexpr int kMaxSweeps = 50;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += at(a, p, q) * at(a, p, q);
    }
    if (off < 1e-18) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = at(a, p, q);
        if (std::abs(apq) < 1e-15) continue;
        const double theta = (at(a, q, q) - at(a, p, p)) / (2 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1));
        const double c = 1.0 / std::sqrt(t * t + 1);
        const double s = t * c;
        for (int i = 0; i < n; ++i) {
          const double aip = at(a, i, p);
          const double aiq = at(a, i, q);
          at(a, i, p) = c * aip - s * aiq;
          at(a, i, q) = s * aip + c * aiq;
        }
        for (int i = 0; i < n; ++i) {
          const double api = at(a, p, i);
          const double aqi = at(a, q, i);
          at(a, p, i) = c * api - s * aqi;
          at(a, q, i) = s * api + c * aqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = at(vecs, i, p);
          const double viq = at(vecs, i, q);
          at(vecs, i, p) = c * vip - s * viq;
          at(vecs, i, q) = s * vip + c * viq;
        }
      }
    }
  }
  std::vector<double> eigenvalues(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    eigenvalues[static_cast<std::size_t>(i)] = at(a, i, i);
  }
  return eigenvalues;
}

}  // namespace

PcaModel PcaModel::fit(const std::vector<float>& rows, int input_dim,
                       int output_dim) {
  if (input_dim <= 0 || output_dim <= 0 || output_dim > input_dim) {
    throw std::invalid_argument("PcaModel::fit: bad dimensions");
  }
  if (rows.empty() || rows.size() % static_cast<std::size_t>(input_dim)) {
    throw std::invalid_argument("PcaModel::fit: rows not a multiple of dim");
  }
  const std::size_t n = rows.size() / static_cast<std::size_t>(input_dim);

  PcaModel model;
  model.input_dim_ = input_dim;
  model.output_dim_ = output_dim;
  model.mean_.assign(static_cast<std::size_t>(input_dim), 0.0f);
  for (std::size_t r = 0; r < n; ++r) {
    for (int d = 0; d < input_dim; ++d) {
      model.mean_[static_cast<std::size_t>(d)] +=
          rows[r * static_cast<std::size_t>(input_dim) +
               static_cast<std::size_t>(d)];
    }
  }
  for (auto& m : model.mean_) m /= static_cast<float>(n);

  // Covariance (input_dim x input_dim).
  std::vector<double> cov(
      static_cast<std::size_t>(input_dim) * static_cast<std::size_t>(input_dim),
      0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = rows.data() + r * static_cast<std::size_t>(input_dim);
    for (int i = 0; i < input_dim; ++i) {
      const double di = row[i] - model.mean_[static_cast<std::size_t>(i)];
      for (int j = i; j < input_dim; ++j) {
        const double dj = row[j] - model.mean_[static_cast<std::size_t>(j)];
        cov[static_cast<std::size_t>(i) * input_dim + j] += di * dj;
      }
    }
  }
  for (int i = 0; i < input_dim; ++i) {
    for (int j = i; j < input_dim; ++j) {
      const double v =
          cov[static_cast<std::size_t>(i) * input_dim + j] /
          static_cast<double>(std::max<std::size_t>(n - 1, 1));
      cov[static_cast<std::size_t>(i) * input_dim + j] = v;
      cov[static_cast<std::size_t>(j) * input_dim + i] = v;
    }
  }

  std::vector<double> vecs;
  std::vector<double> eigenvalues = jacobi_eigen(cov, input_dim, vecs);

  // Sort components by descending eigenvalue.
  std::vector<int> order(static_cast<std::size_t>(input_dim));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return eigenvalues[static_cast<std::size_t>(a)] >
           eigenvalues[static_cast<std::size_t>(b)];
  });

  double total = 0, kept = 0;
  for (double ev : eigenvalues) total += std::max(ev, 0.0);
  model.basis_.assign(
      static_cast<std::size_t>(output_dim) * static_cast<std::size_t>(input_dim),
      0.0f);
  for (int k = 0; k < output_dim; ++k) {
    const int src = order[static_cast<std::size_t>(k)];
    kept += std::max(eigenvalues[static_cast<std::size_t>(src)], 0.0);
    for (int d = 0; d < input_dim; ++d) {
      // Eigenvectors are columns of `vecs`.
      model.basis_[static_cast<std::size_t>(k) * input_dim + d] =
          static_cast<float>(vecs[static_cast<std::size_t>(d) * input_dim +
                                  static_cast<std::size_t>(src)]);
    }
  }
  model.explained_ = total > 0 ? kept / total : 1.0;
  return model;
}

std::vector<float> PcaModel::project(const float* x) const {
  std::vector<float> out(static_cast<std::size_t>(output_dim_), 0.0f);
  for (int k = 0; k < output_dim_; ++k) {
    double acc = 0;
    const float* row =
        basis_.data() + static_cast<std::size_t>(k) * input_dim_;
    for (int d = 0; d < input_dim_; ++d) {
      acc += static_cast<double>(row[d]) *
             (x[d] - mean_[static_cast<std::size_t>(d)]);
    }
    out[static_cast<std::size_t>(k)] = static_cast<float>(acc);
  }
  return out;
}

FloatFeatures PcaModel::project_features(const FloatFeatures& in) const {
  if (in.dim != input_dim_) {
    throw std::invalid_argument("PcaModel: dimension mismatch");
  }
  FloatFeatures out;
  out.dim = output_dim_;
  out.keypoints = in.keypoints;
  out.stats = in.stats;
  out.values.reserve(in.size() * static_cast<std::size_t>(output_dim_));
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::vector<float> p = project(in.row(i));
    out.values.insert(out.values.end(), p.begin(), p.end());
    out.stats.ops += static_cast<std::uint64_t>(input_dim_) *
                     static_cast<std::uint64_t>(output_dim_) * 2;
  }
  return out;
}

PcaModel fit_pca_sift(const std::vector<FloatFeatures>& training_sets,
                      int output_dim) {
  std::vector<float> rows;
  for (const auto& fs : training_sets) {
    rows.insert(rows.end(), fs.values.begin(), fs.values.end());
  }
  return PcaModel::fit(rows, 128, output_dim);
}

}  // namespace bees::feat
