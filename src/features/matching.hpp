// Descriptor matching: nearest-neighbour search with Lowe's ratio test and
// mutual cross-checking, for both binary (Hamming) and float (L2)
// descriptors.  The match count feeds the Jaccard image similarity of paper
// Eq. 2.  Defaults were calibrated so that similar views of one scene score
// ~0.1-0.5 while unrelated scenes score ~0.004 with a tail crossing 0.01 —
// the similarity landscape of the paper's Fig. 4.
#pragma once

#include <cstdint>
#include <vector>

#include "features/keypoint.hpp"

namespace bees::feat {

struct BinaryMatchParams {
  int max_distance = 48;   ///< Hamming acceptance threshold (of 256 bits).
  double ratio = 0.8;      ///< best < ratio * second-best (Lowe's test).
  bool cross_check = true; ///< Require mutual nearest neighbours.
};

struct FloatMatchParams {
  /// L2 acceptance threshold.  Calibrated (with the ratio test) so that
  /// SIFT/PCA-SIFT image similarity lands in the same bands as the binary
  /// matcher: similar views >~0.1, unrelated scenes <~0.03 — so the
  /// paper's single EDR threshold family applies to either feature type.
  double max_distance = 0.4;
  double ratio = 0.7;
  bool cross_check = true;
};

/// One accepted correspondence between descriptor sets A and B.
struct Match {
  std::size_t index_a = 0;
  std::size_t index_b = 0;
  double distance = 0.0;
};

/// Hamming matching with ratio test and optional cross-check; each
/// descriptor of `a` matches at most one of `b`.  `ops` (if non-null)
/// accumulates the number of modeled descriptor comparisons.  Runs on the
/// packed early-exit kernel (match_kernel.hpp) via a thread-local
/// workspace; results are bit-exact with match_binary_naive.
std::vector<Match> match_binary(const std::vector<Descriptor256>& a,
                                const std::vector<Descriptor256>& b,
                                const BinaryMatchParams& params = {},
                                std::uint64_t* ops = nullptr);

/// The brute-force O(|a|*|b|) reference matcher: four XOR+popcount lanes
/// per pair, two full passes when cross-checking.  Kept as the ground
/// truth the kernel is property-tested (and benchmarked) against.
std::vector<Match> match_binary_naive(const std::vector<Descriptor256>& a,
                                      const std::vector<Descriptor256>& b,
                                      const BinaryMatchParams& params = {},
                                      std::uint64_t* ops = nullptr);

/// Brute-force L2 matching with ratio test and optional cross-check for
/// float descriptor sets.
std::vector<Match> match_float(const FloatFeatures& a, const FloatFeatures& b,
                               const FloatMatchParams& params = {},
                               std::uint64_t* ops = nullptr);

/// Squared Euclidean distance between two `dim`-vectors.
double l2_sq(const float* x, const float* y, int dim) noexcept;

}  // namespace bees::feat
