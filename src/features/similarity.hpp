// Image-level similarity: the Jaccard similarity of two feature sets
// (paper Eq. 2), sim(I1, I2) = |S1 ∩ S2| / |S1 ∪ S2|, where the
// intersection size is the number of accepted descriptor correspondences.
#pragma once

#include <cstdint>
#include <vector>

#include "features/keypoint.hpp"
#include "features/matching.hpp"

namespace bees::feat {

class MatchWorkspace;

/// Jaccard similarity of two ORB feature sets in [0, 1].  Two empty sets
/// have similarity 0 (no evidence of content overlap).
double jaccard_similarity(const BinaryFeatures& a, const BinaryFeatures& b,
                          const BinaryMatchParams& params = {},
                          std::uint64_t* ops = nullptr);

/// Workspace overload for hot loops (index rescore, the IBRD similarity
/// graph): scores many pairs through one reusable MatchWorkspace, so no
/// per-pair allocation happens.  Same value as the overload above.
double jaccard_similarity(const BinaryFeatures& a, const BinaryFeatures& b,
                          const BinaryMatchParams& params, std::uint64_t* ops,
                          MatchWorkspace& workspace);

/// Batched overload behind the multi-query rescore plane: scores every
/// query in `queries` against the same candidate `b`, packing `b` once.
/// sims[k] and (when non-null) ops[k] receive exactly what the workspace
/// overload above would produce for (*queries[k], b); `sims` and `ops`
/// must hold queries.size() slots, and ops slots are accumulated into.
void jaccard_similarity_batch(const std::vector<const BinaryFeatures*>& queries,
                              const BinaryFeatures& b,
                              const BinaryMatchParams& params, double* sims,
                              std::uint64_t* ops, MatchWorkspace& workspace);

/// Jaccard similarity of two float feature sets (SIFT / PCA-SIFT).
double jaccard_similarity(const FloatFeatures& a, const FloatFeatures& b,
                          const FloatMatchParams& params = {},
                          std::uint64_t* ops = nullptr);

/// Jaccard from set sizes and match count; shared by the index code.
double jaccard_from_matches(std::size_t size_a, std::size_t size_b,
                            std::size_t match_count) noexcept;

}  // namespace bees::feat
