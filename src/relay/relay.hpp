// Edge-relay tier: store-and-forward between fleet devices and the core
// cluster, with content-aware redundancy elimination (CARE) on the
// backhaul.
//
// Devices in the field talk to a nearby relay over the cheap local hop;
// the relay owns the expensive backhaul link to the core.  Two services:
//
//   Dedup (CARE).  Every forwarded request is chunked through
//   store::build_manifest and addressed by store::ChunkKey (content hash +
//   CRC + size).  The relay remembers which chunk keys it has already
//   pushed upstream; a forwarded request is charged only its manifest
//   bytes plus the chunks the core has not seen from this relay.  Devices
//   photographing the same scene upload near-duplicate bytes, so
//   co-located traffic collapses: the second copy of a shared region costs
//   a manifest entry, not the region.
//
//   Store-and-forward.  When the backhaul is partitioned the relay holds
//   uploads in arrival order (a bounded view of the damaged-network case:
//   the device gets its ack from the relay and moves on).  When the
//   partition heals, held requests drain FIFO through the same dedup
//   accounting — bytes cross the backhaul at heal time, not hold time.
//
// Relays are passive state machines driven by the fleet simulator's
// virtual clock: nothing here reads real time, so relay behaviour is
// deterministic for a fixed arrival order.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "store/chunk.hpp"

namespace bees::relay {

/// Error message a device sees when its relay is down (scripted outage) or
/// cannot reach the core for a query.  Fleet clients classify it as
/// retryable, like serve::kShedErrorMessage.
inline constexpr const char* kRelayUnavailableMessage = "relay unavailable";

/// Counters one relay (or an aggregated tier) accumulates.
struct RelayStats {
  std::uint64_t forwarded_requests = 0;
  std::uint64_t ingress_bytes = 0;   ///< Raw request bytes entering the relay.
  std::uint64_t backhaul_bytes = 0;  ///< Manifest + missing-chunk bytes sent.
  std::uint64_t dedup_bytes_saved = 0;  ///< ingress - chunk bytes shipped.
  std::uint64_t dedup_chunks_hit = 0;   ///< Chunks already known upstream.
  std::uint64_t held_requests = 0;      ///< Requests parked by hold().
  std::uint64_t drained_requests = 0;   ///< Held requests later drained.
  std::uint64_t queue_depth_max = 0;    ///< Peak store-and-forward depth.
};

/// One held upload: the caller's token (the fleet keeps the routing
/// context — device, sequence number — on its side) plus the raw request.
struct HeldRequest {
  std::uint64_t token = 0;
  std::vector<std::uint8_t> request;
};

class Relay {
 public:
  /// `chunk_size` is the CARE chunking interval (> 0).
  Relay(int id, std::uint32_t chunk_size);

  /// Accounts one request crossing the backhaul now and returns the bytes
  /// charged: encoded-manifest size plus the raw bytes of every chunk this
  /// relay has not previously pushed upstream.  Updates the dedup set.
  std::uint64_t forward(const std::vector<std::uint8_t>& request);

  /// Parks an upload during a backhaul partition (FIFO).
  void hold(std::uint64_t token, std::vector<std::uint8_t> request);

  /// Hands back every held request in arrival order and clears the queue.
  /// The caller forwards each (dedup accounting happens at drain, when the
  /// bytes actually cross the backhaul).
  std::vector<HeldRequest> take_held();

  std::size_t queue_depth() const { return held_.size(); }
  int id() const noexcept { return id_; }
  const RelayStats& stats() const noexcept { return stats_; }

 private:
  const int id_;
  const std::uint32_t chunk_size_;
  std::unordered_set<store::ChunkKey, store::ChunkKeyHasher> forwarded_;
  std::deque<HeldRequest> held_;
  RelayStats stats_;
};

/// The fleet's relay fan: device d talks to relay d % size.  Outage
/// scheduling lives in the simulator (it owns the virtual clock); the tier
/// is just the relays plus aggregate accounting.
class RelayTier {
 public:
  RelayTier(int relays, std::uint32_t chunk_size);

  Relay& route(int device) {
    return relays_[static_cast<std::size_t>(device) % relays_.size()];
  }
  Relay& at(int relay) { return relays_[static_cast<std::size_t>(relay)]; }
  int size() const { return static_cast<int>(relays_.size()); }

  /// Sum of every relay's counters (queue_depth_max is the max).
  RelayStats stats() const;

 private:
  std::vector<Relay> relays_;
};

}  // namespace bees::relay
