#include "relay/relay.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace bees::relay {

Relay::Relay(int id, std::uint32_t chunk_size)
    : id_(id), chunk_size_(chunk_size) {
  if (chunk_size_ == 0) {
    throw std::invalid_argument("relay: chunk size must be > 0");
  }
}

std::uint64_t Relay::forward(const std::vector<std::uint8_t>& request) {
  const store::Manifest manifest = store::build_manifest(request, chunk_size_);
  std::uint64_t sent = store::encode_manifest(manifest).size();
  std::uint64_t chunk_bytes_sent = 0;
  for (std::size_t c = 0; c < manifest.chunks.size(); ++c) {
    const store::ChunkKey& key = manifest.chunks[c];
    if (forwarded_.insert(key).second) {
      chunk_bytes_sent += key.size;
    } else {
      ++stats_.dedup_chunks_hit;
      obs::count("relay.dedup.chunks_hit");
    }
  }
  sent += chunk_bytes_sent;

  ++stats_.forwarded_requests;
  stats_.ingress_bytes += request.size();
  stats_.backhaul_bytes += sent;
  const std::uint64_t saved = request.size() - chunk_bytes_sent;
  stats_.dedup_bytes_saved += saved;
  obs::count("relay.forward.requests");
  obs::count("relay.forward.backhaul_bytes", static_cast<double>(sent));
  obs::count("relay.dedup.bytes_saved", static_cast<double>(saved));
  return sent;
}

void Relay::hold(std::uint64_t token, std::vector<std::uint8_t> request) {
  held_.push_back(HeldRequest{token, std::move(request)});
  ++stats_.held_requests;
  stats_.queue_depth_max =
      std::max<std::uint64_t>(stats_.queue_depth_max, held_.size());
  obs::count("relay.hold.requests");
}

std::vector<HeldRequest> Relay::take_held() {
  std::vector<HeldRequest> out(std::make_move_iterator(held_.begin()),
                               std::make_move_iterator(held_.end()));
  held_.clear();
  stats_.drained_requests += out.size();
  if (!out.empty()) {
    obs::count("relay.drain.requests", static_cast<double>(out.size()));
  }
  return out;
}

RelayTier::RelayTier(int relays, std::uint32_t chunk_size) {
  if (relays <= 0) {
    throw std::invalid_argument("relay: tier needs at least one relay");
  }
  relays_.reserve(static_cast<std::size_t>(relays));
  for (int r = 0; r < relays; ++r) relays_.emplace_back(r, chunk_size);
}

RelayStats RelayTier::stats() const {
  RelayStats total;
  for (const Relay& relay : relays_) {
    const RelayStats& s = relay.stats();
    total.forwarded_requests += s.forwarded_requests;
    total.ingress_bytes += s.ingress_bytes;
    total.backhaul_bytes += s.backhaul_bytes;
    total.dedup_bytes_saved += s.dedup_bytes_saved;
    total.dedup_chunks_hit += s.dedup_chunks_hit;
    total.held_requests += s.held_requests;
    total.drained_requests += s.drained_requests;
    total.queue_depth_max =
        std::max(total.queue_depth_max, s.queue_depth_max);
  }
  return total;
}

}  // namespace bees::relay
