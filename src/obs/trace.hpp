// Span-based tracing of the upload pipeline.  Spans are complete events
// (name, category, start, duration) on one of a few fixed timeline lanes,
// collected under a mutex and exportable as a chrome://tracing /
// Perfetto-compatible JSON file.  Simulation spans carry simulated-clock
// timestamps (deterministic); server-side spans carry wall-clock
// timestamps — the lanes keep the two time bases from interleaving
// confusingly in the viewer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace bees::obs {

/// Timeline lanes ("tid" in the chrome trace) used by the built-in
/// instrumentation.
inline constexpr std::uint32_t kLaneScheme = 1;     ///< Client pipeline stages.
inline constexpr std::uint32_t kLaneTransport = 2;  ///< Per-RPC attempts.
inline constexpr std::uint32_t kLaneServer = 3;     ///< Server dispatches.

struct TraceEvent {
  std::string name;
  std::string category;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::uint32_t lane = 0;

  bool operator==(const TraceEvent&) const = default;
};

class Tracer {
 public:
  void add(TraceEvent event);

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  /// Chrome trace-event JSON: {"traceEvents":[{"name",...,"ph":"X",
  /// "ts":<us>,"dur":<us>,"pid":1,"tid":<lane>}, ...]}.
  std::string to_chrome_json() const;

  /// The process-wide tracer all built-in spans record into.
  static Tracer& global();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Parses a to_chrome_json() dump back into events (strict: accepts the
/// exporter's own output, not arbitrary JSON).  Throws std::runtime_error
/// on malformed input.  Exists so tests — and tools replaying a trace —
/// can round-trip the file format.
std::vector<TraceEvent> parse_chrome_json(const std::string& json);

/// Records one complete span if observability is enabled.
inline void span_event(std::string name, std::string category, double start_s,
                       double duration_s, std::uint32_t lane) {
  if (enabled()) {
    Tracer::global().add(
        {std::move(name), std::move(category), start_s, duration_s, lane});
  }
}

/// RAII span: reads `clock` at construction and destruction and records
/// the complete event into the global tracer.  Inert (clock never called)
/// when observability is disabled at construction.
class ScopedSpan {
 public:
  ScopedSpan(std::string name, std::string category, ClockFn clock,
             std::uint32_t lane = 0)
      : name_(std::move(name)),
        category_(std::move(category)),
        clock_(std::move(clock)),
        lane_(lane),
        active_(enabled()) {
    if (active_) start_s_ = clock_();
  }

  /// Wall-clock span (server-side instrumentation).
  ScopedSpan(std::string name, std::string category,
             std::uint32_t lane = kLaneServer)
      : ScopedSpan(std::move(name), std::move(category),
                   ClockFn(&wall_seconds), lane) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (active_) {
      Tracer::global().add({std::move(name_), std::move(category_), start_s_,
                            clock_() - start_s_, lane_});
    }
  }

 private:
  std::string name_;
  std::string category_;
  ClockFn clock_;
  std::uint32_t lane_;
  bool active_;
  double start_s_ = 0.0;
};

}  // namespace bees::obs
