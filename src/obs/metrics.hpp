// Process-wide observability: a registry of named counters, gauges, and
// fixed-bucket histograms that every layer (core schemes, net transport,
// cloud server, benches, tools) charges into.  Disabled by default — the
// enabled() gate is a single relaxed atomic load, so an instrumented hot
// path costs one branch when observability is off and simulation outputs
// stay byte-identical.  All mutation is mutex-guarded: ThreadPool workers
// may record concurrently, and because counters/histogram buckets only
// accumulate order-independent additions, the resulting snapshot is
// deterministic regardless of scheduling.
//
// Naming convention (see DESIGN.md §7): dot-separated `layer.noun[.unit]`,
// e.g. `net.transport.retries`, `core.stage.afe.seconds`.  Histogram names
// end in their unit (`.seconds`, `.candidates`); counters carrying a unit
// other than "events" end in `_bytes` / `_seconds` / `_j`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bees::obs {

/// Frozen view of one histogram: `counts[i]` holds samples with
/// `value <= bounds[i]` (first matching bucket); the final entry of
/// `counts` is the overflow bucket above every bound.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries.
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank, clamped to the observed [min, max]
  /// (so a single-sample histogram reports that sample at every quantile).
  /// Purely a function of the frozen snapshot — deterministic regardless
  /// of the recording order that produced it.
  double quantile(double q) const noexcept;
};

/// Frozen view of the whole registry, sorted by name (std::map) so any
/// export of it is deterministic.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  /// Adds `delta` to the named counter (created at 0 on first use).
  void add(const std::string& name, double delta = 1.0);
  /// Sets the named gauge to `value` (last write wins).
  void set(const std::string& name, double value);
  /// Records `value` into the named histogram; an undeclared histogram is
  /// created with default_bounds().
  void observe(const std::string& name, double value);
  /// Pre-declares a histogram with custom bucket upper bounds (ascending).
  /// No-op if the histogram already holds samples.
  void declare_histogram(const std::string& name, std::vector<double> bounds);

  /// Log-spaced decade bounds 1e-6 .. 1e6: wide enough for seconds,
  /// bytes, and op counts alike.
  static std::vector<double> default_bounds();

  /// Fixed log-scale latency bounds: 5 buckets per decade from 100 us to
  /// 10,000 s (41 bounds + overflow).  Fine enough that interpolated
  /// p50/p90/p99 estimates stay within one sub-decade step of the exact
  /// order statistics, and fixed so every exporter of a latency histogram
  /// (fleet reports, --metrics-json) buckets identically.
  static std::vector<double> latency_bounds();

  MetricsSnapshot snapshot() const;
  /// Deterministic JSON dump: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,mean,buckets:[{le,count}...]}}}.
  std::string to_json() const;
  void reset();

  /// The process-wide registry every convenience wrapper charges.
  static MetricsRegistry& global();

 private:
  struct Histogram {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Global observability switch.  Off by default; the wrappers below (and
/// every in-tree instrumentation point) are no-ops while it is off.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Convenience wrappers charging the global registry; single-branch no-ops
/// while observability is disabled.
inline void count(const char* name, double delta = 1.0) {
  if (detail::g_enabled.load(std::memory_order_relaxed)) {
    MetricsRegistry::global().add(name, delta);
  }
}
inline void gauge(const char* name, double value) {
  if (detail::g_enabled.load(std::memory_order_relaxed)) {
    MetricsRegistry::global().set(name, value);
  }
}
inline void observe(const char* name, double value) {
  if (detail::g_enabled.load(std::memory_order_relaxed)) {
    MetricsRegistry::global().observe(name, value);
  }
}

}  // namespace bees::obs
