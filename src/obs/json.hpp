// Minimal JSON emission helpers shared by the metrics and trace exporters.
// Numbers are printed with std::to_chars so every double round-trips
// exactly; the exporters sort map keys, making each dump byte-deterministic
// for a given recorded state.
#pragma once

#include <charconv>
#include <cstdio>
#include <string>

namespace bees::obs {

/// Shortest round-trip double literal.  std::to_chars (not snprintf or
/// std::to_string) because the printf family formats through the global C
/// locale: under a comma-decimal locale "%.17g" emits "0,5", which is not
/// JSON.  to_chars is locale-independent by specification.
inline std::string json_number(double v) {
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc() ? std::string(buf, end) : "0";
}

/// Quotes and escapes a string literal (quotes, backslashes, control
/// bytes; metric/span names are plain ASCII in practice).
inline std::string json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace bees::obs
