// Minimal JSON emission helpers shared by the metrics and trace exporters.
// Numbers are printed with %.17g so every double round-trips exactly; the
// exporters sort map keys, making each dump byte-deterministic for a given
// recorded state.
#pragma once

#include <cstdio>
#include <string>

namespace bees::obs {

/// Shortest-lossless-ish double literal (%.17g round-trips IEEE doubles).
inline std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Quotes and escapes a string literal (quotes, backslashes, control
/// bytes; metric/span names are plain ASCII in practice).
inline std::string json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace bees::obs
