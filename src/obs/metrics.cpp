#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"

namespace bees::obs {

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target) {
      // Interpolate within [bucket lower, bucket upper], clamped to the
      // observed range so open-ended buckets stay finite.
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::clamp(lo, min, max);
      hi = std::clamp(hi, min, max);
      if (hi < lo) hi = lo;
      const double fraction =
          (target - cumulative) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative = next;
  }
  return max;
}

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::vector<double> MetricsRegistry::default_bounds() {
  std::vector<double> bounds;
  bounds.reserve(13);
  for (int decade = -6; decade <= 6; ++decade) {
    double b = 1.0;
    for (int i = 0; i < (decade < 0 ? -decade : decade); ++i) {
      b *= 10.0;
    }
    bounds.push_back(decade < 0 ? 1.0 / b : b);
  }
  return bounds;
}

std::vector<double> MetricsRegistry::latency_bounds() {
  // 5 buckets per decade, multiplicative steps: successive runs (and
  // builds against the same libm) produce identical bound values, which
  // the deterministic-report contract of the fleet simulator relies on.
  constexpr int kDecades = 8;       // 1e-4 .. 1e4 seconds
  constexpr int kPerDecade = 5;
  std::vector<double> bounds;
  bounds.reserve(kDecades * kPerDecade + 1);
  const double step = std::pow(10.0, 1.0 / kPerDecade);
  double b = 1e-4;
  bounds.push_back(b);
  for (int i = 1; i <= kDecades * kPerDecade; ++i) {
    // Re-anchor at each decade so accumulated multiplication error cannot
    // drift the canonical 10^k bounds.
    if (i % kPerDecade == 0) {
      b = 1e-4 * std::pow(10.0, i / kPerDecade);
    } else {
      b *= step;
    }
    bounds.push_back(b);
  }
  return bounds;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  std::scoped_lock lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::scoped_lock lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::scoped_lock lock(mutex_);
  Histogram& h = histograms_[name];
  if (h.bounds.empty()) {
    h.bounds = default_bounds();
    h.counts.assign(h.bounds.size() + 1, 0);
  }
  const auto it = std::lower_bound(h.bounds.begin(), h.bounds.end(), value);
  ++h.counts[static_cast<std::size_t>(it - h.bounds.begin())];
  if (h.count == 0) {
    h.min = h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  h.sum += value;
  ++h.count;
}

void MetricsRegistry::declare_histogram(const std::string& name,
                                        std::vector<double> bounds) {
  std::scoped_lock lock(mutex_);
  Histogram& h = histograms_[name];
  if (h.count > 0) return;  // keep the buckets its samples already landed in
  h.bounds = std::move(bounds);
  h.counts.assign(h.bounds.size() + 1, 0);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h.bounds;
    hs.counts = h.counts;
    hs.count = h.count;
    hs.sum = h.sum;
    hs.min = h.min;
    hs.max = h.max;
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    out += "    " + json_string(name) + ": " + json_number(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + json_string(name) + ": " + json_number(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + json_string(name) + ": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + json_number(h.sum) +
           ", \"min\": " + json_number(h.min) +
           ", \"max\": " + json_number(h.max) +
           ", \"mean\": " + json_number(h.mean()) +
           ", \"p50\": " + json_number(h.quantile(0.50)) +
           ", \"p95\": " + json_number(h.quantile(0.95)) +
           ", \"p99\": " + json_number(h.quantile(0.99)) + ", \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ", ";
      out += "{\"le\": ";
      out += i < h.bounds.size() ? json_number(h.bounds[i]) : "\"inf\"";
      out += ", \"count\": " + std::to_string(h.counts[i]) + "}";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace bees::obs
