// ScopedTimer: RAII probe that charges an elapsed duration into a named
// histogram of the metrics registry.  The clock source is pluggable — the
// default reads the wall clock (steady_clock), and simulation code passes a
// lambda reading its simulated clock (e.g. net::Channel::now or a
// BatchReport's busy-seconds accumulator) so recorded durations stay
// deterministic.  When observability is disabled at construction the timer
// is fully inert: the clock function is never invoked.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace bees::obs {

/// A clock source in seconds.  Only the difference of two readings is
/// used, so any monotonic origin works.
using ClockFn = std::function<double()>;

/// Monotonic wall-clock seconds (steady_clock).
inline double wall_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class ScopedTimer {
 public:
  /// Wall-clock timer charging `name` in the global registry.
  explicit ScopedTimer(std::string name)
      : ScopedTimer(std::move(name), ClockFn(&wall_seconds)) {}

  /// Timer reading `clock`; charges `name` in `registry`.
  ScopedTimer(std::string name, ClockFn clock,
              MetricsRegistry& registry = MetricsRegistry::global())
      : name_(std::move(name)),
        clock_(std::move(clock)),
        registry_(&registry),
        active_(enabled()) {
    if (active_) start_s_ = clock_();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (active_) registry_->observe(name_, elapsed_seconds());
  }

  /// Seconds since construction (0 when inert).
  double elapsed_seconds() const { return active_ ? clock_() - start_s_ : 0.0; }

 private:
  std::string name_;
  ClockFn clock_;
  MetricsRegistry* registry_;
  bool active_;
  double start_s_ = 0.0;
};

}  // namespace bees::obs
