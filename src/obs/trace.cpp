#include "obs/trace.hpp"

#include <cstdlib>
#include <stdexcept>

#include "obs/json.hpp"

namespace bees::obs {

void Tracer::add(TraceEvent event) {
  std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  std::scoped_lock lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::scoped_lock lock(mutex_);
  events_.clear();
}

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> events = this->events();
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i ? ",\n  " : "\n  ";
    out += "{\"name\": " + json_string(e.name) +
           ", \"cat\": " + json_string(e.category) +
           ", \"ph\": \"X\", \"ts\": " + json_number(e.start_s * 1e6) +
           ", \"dur\": " + json_number(e.duration_s * 1e6) +
           ", \"pid\": 1, \"tid\": " + std::to_string(e.lane) + "}";
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

namespace {

/// Cursor over the exporter's own JSON dialect.
struct Scanner {
  const std::string& s;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON: " + what + " at offset " +
                             std::to_string(pos));
  }
  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\n' ||
                              s[pos] == '\r' || s[pos] == '\t')) {
      ++pos;
    }
  }
  bool try_consume(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!try_consume(c)) fail(std::string("expected '") + c + "'");
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c == '\\') {
        if (pos >= s.size()) fail("dangling escape");
        const char esc = s[pos++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos + 4 > s.size()) fail("short \\u escape");
            c = static_cast<char>(
                std::strtol(s.substr(pos, 4).c_str(), nullptr, 16));
            pos += 4;
            break;
          }
          default: fail("unknown escape");
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }
  double parse_number() {
    skip_ws();
    char* end = nullptr;
    const double v = std::strtod(s.c_str() + pos, &end);
    if (end == s.c_str() + pos) fail("expected number");
    pos = static_cast<std::size_t>(end - s.c_str());
    return v;
  }
};

}  // namespace

std::vector<TraceEvent> parse_chrome_json(const std::string& json) {
  Scanner sc{json};
  sc.expect('{');
  if (sc.parse_string() != "traceEvents") sc.fail("expected traceEvents key");
  sc.expect(':');
  sc.expect('[');
  std::vector<TraceEvent> events;
  if (!sc.try_consume(']')) {
    do {
      sc.expect('{');
      TraceEvent e;
      do {
        const std::string key = sc.parse_string();
        sc.expect(':');
        if (key == "name") {
          e.name = sc.parse_string();
        } else if (key == "cat") {
          e.category = sc.parse_string();
        } else if (key == "ph") {
          if (sc.parse_string() != "X") sc.fail("only complete events");
        } else if (key == "ts") {
          e.start_s = sc.parse_number() / 1e6;
        } else if (key == "dur") {
          e.duration_s = sc.parse_number() / 1e6;
        } else if (key == "pid") {
          sc.parse_number();
        } else if (key == "tid") {
          e.lane = static_cast<std::uint32_t>(sc.parse_number());
        } else {
          sc.fail("unknown key '" + key + "'");
        }
      } while (sc.try_consume(','));
      sc.expect('}');
      events.push_back(std::move(e));
    } while (sc.try_consume(','));
    sc.expect(']');
  }
  sc.expect('}');
  return events;
}

}  // namespace bees::obs
