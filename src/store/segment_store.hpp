// Content-addressed chunked segment store (the AFF4 shape, see DESIGN §12):
// chunks are compressed independently — in parallel across a thread pool
// when one is attached — and packed into append-only segment files; a
// directory maps ChunkKey -> (segment, offset); reads go through an LRU raw
// -chunk cache; compaction rewrites live chunks out of dead-heavy segments
// and deletes them, bounding disk growth.
//
// One store instance backs both write paths of the system: wire-level
// chunk uploads (cloud/serve chunk endpoints) and the serving layer's WAL
// record bodies + snapshots.  Everything is keyed by content, so identical
// payloads — retried uploads, duplicate images across devices, unchanged
// snapshot regions — occupy one copy.
//
// Liveness is reference-counted by the owners: pin() marks a chunk live
// (snapshot manifests, un-reset WAL records, committed uploads), unpin()
// releases it; compaction drops only unpinned chunks.  After a restart the
// directory is rebuilt by scanning segments (torn tails are truncated) and
// owners re-pin whatever their recovered manifests reference.
//
// Thread-safe: all public methods may be called concurrently.  Determinism:
// the same put sequence produces byte-identical segment files regardless of
// the compression pool's thread count (chunks are appended in call order).
#pragma once

#include <cstdint>
#include <fstream>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/chunk.hpp"
#include "util/thread_pool.hpp"

namespace bees::store {

struct SegmentStoreOptions {
  /// Segment directory; empty = memory-backed segments (tests, pure-wire
  /// dedup without durability).
  std::string dir;
  /// Default chunking interval offered to callers via chunk_size().
  std::uint32_t chunk_size = 64 * 1024;
  /// A segment rolls over once its stored bytes pass this.
  std::uint64_t segment_target_bytes = 4u << 20;
  /// LRU raw-chunk read cache capacity (bytes of raw chunk data).
  std::uint64_t cache_capacity_bytes = 8u << 20;
  /// Soft disk ceiling: maybe_compact() compacts (repeatedly, hardest-dead
  /// segment first) while total segment bytes exceed this.  0 = unbounded.
  std::uint64_t disk_ceiling_bytes = 0;
  /// maybe_compact() also rewrites any sealed segment whose dead-byte
  /// fraction exceeds this ratio.
  double compact_dead_ratio = 0.5;
  /// Optional pool for parallel chunk compression in put_many.
  util::ThreadPool* pool = nullptr;
};

class SegmentStore {
 public:
  /// Opens (or creates) the store.  With a directory, existing segments are
  /// scanned to rebuild the chunk directory; a torn final record is
  /// truncated away, like a torn WAL tail.  Throws util::DecodeError on a
  /// structurally corrupt segment header.
  explicit SegmentStore(SegmentStoreOptions options);
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  std::uint32_t chunk_size() const noexcept { return options_.chunk_size; }
  const SegmentStoreOptions& options() const noexcept { return options_; }

  /// Stores one raw chunk (no-op if its key is already present) and returns
  /// its key.
  ChunkKey put(std::span<const std::uint8_t> raw);

  /// Stores every chunk of `payload` under `manifest` (built by the caller
  /// via build_manifest, typically).  Chunks are compressed in parallel on
  /// the attached pool, then appended in manifest order — the resulting
  /// segment bytes are identical to serial puts.  Returns the number of
  /// chunks newly written (the rest were dedup hits).
  ///
  /// With `pin_chunks`, every manifest entry is pinned in the same critical
  /// section that guarantees its presence, so a concurrent compaction can
  /// never reclaim a chunk between the put and the pin (the TOCTOU that
  /// plain put-then-pin has when several owners share one store).  On
  /// return every chunk is guaranteed present and, if requested, pinned.
  std::size_t put_manifest_payload(const Manifest& manifest,
                                   std::span<const std::uint8_t> payload,
                                   bool pin_chunks = false);

  /// Convenience: build_manifest + put_manifest_payload.
  Manifest put_payload(std::span<const std::uint8_t> payload);
  Manifest put_payload(std::span<const std::uint8_t> payload,
                       std::uint32_t chunk_size);

  /// build_manifest + put_manifest_payload with pin_chunks: the returned
  /// manifest's chunks are already pinned (atomically with their append).
  /// The owner must unpin them when the referencing record dies.
  Manifest put_payload_pinned(std::span<const std::uint8_t> payload);

  bool contains(const ChunkKey& key) const;

  /// Raw bytes of one chunk, via the LRU cache.  Throws util::DecodeError
  /// if the key is absent or the stored bytes fail CRC/hash verification.
  std::vector<std::uint8_t> get(const ChunkKey& key);

  /// Reassembles a whole payload from its manifest (get() per chunk) and
  /// verifies the whole-payload content hash.  Throws util::DecodeError on
  /// any missing or corrupt chunk.
  std::vector<std::uint8_t> get_payload(const Manifest& manifest);

  /// Liveness refcounts.  pin() on an absent key throws util::DecodeError
  /// (a manifest referencing a missing chunk must fail loudly); unpin() on
  /// an unpinned or absent key is ignored.
  void pin(const ChunkKey& key);
  void pin(const std::vector<ChunkKey>& keys);
  void unpin(const ChunkKey& key);
  void unpin(const std::vector<ChunkKey>& keys);

  /// Flushes the open segment to disk (no-op in memory mode).
  void flush();

  /// Rewrites live (pinned) chunks out of every sealed segment whose dead
  /// fraction exceeds `dead_ratio`, then deletes those segments.  Returns
  /// the number of segments reclaimed.  Unpinned chunks in a reclaimed
  /// segment are dropped (wire-upload chunks not yet committed simply get
  /// re-sent).  Chunk keys, manifests, and get() results are invariant
  /// across compaction.
  std::size_t compact(double dead_ratio);

  /// Compaction trigger: compacts by options().compact_dead_ratio, and
  /// while disk_bytes() exceeds the configured ceiling keeps reclaiming the
  /// deadest sealed segment.  Returns segments reclaimed.
  std::size_t maybe_compact();

  struct Stats {
    std::uint64_t chunks = 0;          ///< Distinct keys present.
    std::uint64_t segments = 0;        ///< Segment files (incl. open one).
    std::uint64_t disk_bytes = 0;      ///< Total segment bytes on disk.
    std::uint64_t live_bytes = 0;      ///< Stored bytes of pinned chunks.
    std::uint64_t dead_bytes = 0;      ///< Stored bytes of unpinned chunks.
    std::uint64_t raw_bytes = 0;       ///< Raw bytes of all chunks.
    std::uint64_t dedup_hits = 0;      ///< put()s that found the key.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t compactions = 0;     ///< Segments reclaimed to date.
  };
  Stats stats() const;

  std::uint64_t disk_bytes() const;

 private:
  struct Entry {
    std::uint64_t segment = 0;  ///< Segment id owning the stored bytes.
    std::uint64_t offset = 0;   ///< Offset of the stored bytes (past header).
    std::uint32_t stored = 0;   ///< Stored (possibly compressed) length.
    std::uint32_t raw = 0;      ///< Raw length (== key.size).
    std::uint8_t encoding = 0;  ///< 0 = raw, 1 = lz.
    std::uint32_t pins = 0;
  };

  struct Segment {
    std::uint64_t id = 0;
    std::uint64_t bytes = 0;       ///< File length (header + records).
    std::uint64_t dead_bytes = 0;  ///< Stored bytes of unpinned chunks.
    std::uint64_t live_bytes = 0;  ///< Stored bytes of pinned chunks.
    bool sealed = false;
    std::vector<std::uint8_t> memory;  ///< Backing bytes in memory mode.
  };

  struct Prepared {
    ChunkKey key;
    std::vector<std::uint8_t> stored;
    std::uint8_t encoding = 0;
  };

  std::string segment_path(std::uint64_t id) const;
  void open_new_segment_locked();
  void scan_existing_locked();
  /// Appends one prepared chunk record to the open segment (dedup-checked).
  void append_locked(const Prepared& prepared);
  /// pin() body; the caller holds mutex_.
  void pin_locked(const ChunkKey& key);
  static Prepared prepare(std::span<const std::uint8_t> raw);
  std::vector<std::uint8_t> read_stored_locked(const Entry& entry);
  void cache_insert_locked(const ChunkKey& key, std::vector<std::uint8_t> raw);
  std::size_t compact_locked(double dead_ratio, bool enforce_ceiling);
  void rewrite_segment_locked(std::uint64_t segment_id);

  SegmentStoreOptions options_;

  mutable std::mutex mutex_;
  std::unordered_map<ChunkKey, Entry, ChunkKeyHasher> directory_;
  std::map<std::uint64_t, Segment> segments_;  ///< Ordered for determinism.
  std::uint64_t next_segment_id_ = 0;
  std::uint64_t open_segment_ = 0;
  std::ofstream out_;  ///< Append stream of the open segment (dir mode).

  /// LRU raw-chunk cache: list front = most recent.
  std::list<std::pair<ChunkKey, std::vector<std::uint8_t>>> lru_;
  std::unordered_map<ChunkKey, decltype(lru_)::iterator, ChunkKeyHasher>
      cache_index_;
  std::uint64_t cache_bytes_ = 0;

  std::uint64_t dedup_hits_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace bees::store
