#include "store/chunk.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace bees::store {

std::size_t ChunkKeyHasher::operator()(const ChunkKey& key) const noexcept {
  // splitmix64-style finalizer over the already-hashed fields.
  std::uint64_t x = key.hash ^ (static_cast<std::uint64_t>(key.crc) << 32) ^
                    key.size;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

Manifest build_manifest(std::span<const std::uint8_t> payload,
                        std::uint32_t chunk_size) {
  if (chunk_size == 0) {
    throw std::invalid_argument("build_manifest: chunk_size must be > 0");
  }
  Manifest manifest;
  manifest.chunk_size = chunk_size;
  manifest.total_bytes = payload.size();
  manifest.content_hash = util::content_hash64(payload);
  manifest.chunks.reserve((payload.size() + chunk_size - 1) / chunk_size);
  for (std::size_t offset = 0; offset < payload.size();
       offset += chunk_size) {
    const std::size_t len = std::min<std::size_t>(chunk_size,
                                                  payload.size() - offset);
    const auto raw = payload.subspan(offset, len);
    manifest.chunks.push_back(ChunkKey{
        .hash = util::content_hash64(raw),
        .crc = util::crc32(raw),
        .size = static_cast<std::uint32_t>(len),
    });
  }
  return manifest;
}

std::span<const std::uint8_t> chunk_bytes(std::span<const std::uint8_t> payload,
                                          const Manifest& manifest,
                                          std::size_t index) {
  const std::size_t offset =
      index * static_cast<std::size_t>(manifest.chunk_size);
  return payload.subspan(offset, manifest.chunks[index].size);
}

void put_manifest(util::ByteWriter& writer, const Manifest& manifest) {
  writer.put_u32(manifest.chunk_size);
  writer.put_varint(manifest.total_bytes);
  writer.put_u64(manifest.content_hash);
  writer.put_varint(manifest.chunks.size());
  for (const ChunkKey& key : manifest.chunks) {
    writer.put_u64(key.hash);
    writer.put_u32(key.crc);
    writer.put_varint(key.size);
  }
}

Manifest get_manifest(util::ByteReader& reader) {
  Manifest manifest;
  manifest.chunk_size = reader.get_u32();
  manifest.total_bytes = reader.get_varint();
  manifest.content_hash = reader.get_u64();
  const std::uint64_t count = reader.get_varint();
  if (count > kMaxManifestChunks) {
    throw util::DecodeError("manifest: chunk count exceeds limit");
  }
  if (manifest.chunk_size == 0 && count > 0) {
    throw util::DecodeError("manifest: zero chunk_size with chunks");
  }
  const std::uint64_t expected =
      manifest.chunk_size == 0
          ? 0
          : (manifest.total_bytes + manifest.chunk_size - 1) /
                manifest.chunk_size;
  if (count != expected) {
    throw util::DecodeError("manifest: chunk count inconsistent with total");
  }
  manifest.chunks.reserve(count);
  std::uint64_t covered = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    ChunkKey key;
    key.hash = reader.get_u64();
    key.crc = reader.get_u32();
    const std::uint64_t size = reader.get_varint();
    const bool last = i + 1 == count;
    const std::uint64_t want =
        last ? manifest.total_bytes - covered : manifest.chunk_size;
    if (size != want || size == 0) {
      throw util::DecodeError("manifest: chunk size inconsistent with total");
    }
    key.size = static_cast<std::uint32_t>(size);
    covered += size;
    manifest.chunks.push_back(key);
  }
  if (covered != manifest.total_bytes) {
    throw util::DecodeError("manifest: chunks do not cover total_bytes");
  }
  return manifest;
}

std::vector<std::uint8_t> encode_manifest(const Manifest& manifest) {
  util::ByteWriter writer;
  put_manifest(writer, manifest);
  return writer.take();
}

Manifest decode_manifest(std::span<const std::uint8_t> bytes) {
  util::ByteReader reader(bytes);
  Manifest manifest = get_manifest(reader);
  if (!reader.done()) {
    throw util::DecodeError("manifest: trailing bytes");
  }
  return manifest;
}

}  // namespace bees::store
