// Content-addressed chunk keys and payload manifests.
//
// A payload (an encoded image, a WAL record body, a snapshot blob) is split
// into fixed-size chunks; each chunk is addressed by the triple
// (content_hash64, crc32, raw size).  A Manifest records the chunking
// interval, the total length, a whole-payload content hash, and the ordered
// chunk keys — enough to reassemble the payload from any store holding the
// chunks, and to tell a receiver exactly which chunks it is missing.
//
// Manifests are persisted (WAL frames, snapshot manifests) and sent on the
// wire (kChunkManifest / kChunkCommit), so the encoding below and the hash
// functions it embeds are frozen formats — see util/hash.hpp for the
// stability guarantee and DESIGN.md §12 for the layout.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/byte_io.hpp"

namespace bees::store {

/// Address of one chunk: content hash + CRC + raw (uncompressed) length.
/// Two chunks with equal keys are treated as byte-identical everywhere
/// (dedup on disk and on the wire).
struct ChunkKey {
  std::uint64_t hash = 0;  ///< util::content_hash64 of the raw chunk bytes.
  std::uint32_t crc = 0;   ///< util::crc32 of the raw chunk bytes.
  std::uint32_t size = 0;  ///< Raw byte count (<= the manifest chunk_size).

  bool operator==(const ChunkKey&) const = default;
};

/// Hash functor for unordered containers keyed by ChunkKey.
struct ChunkKeyHasher {
  std::size_t operator()(const ChunkKey& key) const noexcept;
};

/// Ordered chunk addresses describing one payload.
struct Manifest {
  std::uint32_t chunk_size = 0;    ///< Chunking interval used to split.
  std::uint64_t total_bytes = 0;   ///< Payload length; last chunk may be short.
  std::uint64_t content_hash = 0;  ///< content_hash64 of the whole payload.
  std::vector<ChunkKey> chunks;

  bool operator==(const Manifest&) const = default;
};

/// Hard cap on a manifest's chunk count accepted by the decoder; guards
/// against allocating on a corrupt length field.
inline constexpr std::uint64_t kMaxManifestChunks = 1u << 22;

/// Splits `payload` at `chunk_size` boundaries and hashes every chunk.
/// Deterministic: equal (payload, chunk_size) always yields byte-identical
/// manifests.  chunk_size must be > 0.  An empty payload has zero chunks.
Manifest build_manifest(std::span<const std::uint8_t> payload,
                        std::uint32_t chunk_size);

/// The raw bytes of chunk `index` of `payload` under `manifest`'s interval.
std::span<const std::uint8_t> chunk_bytes(std::span<const std::uint8_t> payload,
                                          const Manifest& manifest,
                                          std::size_t index);

/// Appends the frozen manifest encoding (see DESIGN.md §12).
void put_manifest(util::ByteWriter& writer, const Manifest& manifest);
/// Decodes one manifest, validating chunk count and per-chunk sizes against
/// chunk_size/total_bytes.  Throws util::DecodeError on any inconsistency.
Manifest get_manifest(util::ByteReader& reader);

std::vector<std::uint8_t> encode_manifest(const Manifest& manifest);
Manifest decode_manifest(std::span<const std::uint8_t> bytes);

}  // namespace bees::store
