#include "store/segment_store.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <iomanip>
#include <iterator>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/compress.hpp"
#include "util/hash.hpp"

namespace bees::store {

namespace {

namespace fs = std::filesystem;

/// Segment file header: magic "BSEG" (LE) + format version.
constexpr std::uint32_t kSegmentMagic = 0x47455342u;
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::uint64_t kSegmentHeaderBytes = 8;
/// Per-record header: u64 hash | u32 crc | u32 raw | u32 stored | u8 enc.
constexpr std::uint64_t kRecordHeaderBytes = 21;
/// Sanity cap on a single chunk's raw length during segment scans; guards
/// allocation on corrupt length fields.
constexpr std::uint32_t kMaxChunkRaw = 64u << 20;

void put_le32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back((v >> (8 * i)) & 0xFFu);
}

void put_le64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back((v >> (8 * i)) & 0xFFu);
}

std::uint32_t get_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

SegmentStore::SegmentStore(SegmentStoreOptions options)
    : options_(std::move(options)) {
  if (options_.chunk_size == 0) options_.chunk_size = 64 * 1024;
  if (options_.segment_target_bytes == 0) options_.segment_target_bytes = 1;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!options_.dir.empty()) {
    fs::create_directories(options_.dir);
    scan_existing_locked();
  }
  open_new_segment_locked();
}

SegmentStore::~SegmentStore() {
  if (out_.is_open()) out_.flush();
}

std::string SegmentStore::segment_path(std::uint64_t id) const {
  std::ostringstream name;
  name << "seg-" << std::setfill('0') << std::setw(6) << id << ".bsg";
  return (fs::path(options_.dir) / name.str()).string();
}

void SegmentStore::scan_existing_locked() {
  std::vector<std::uint64_t> ids;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 14 && name.rfind("seg-", 0) == 0 &&
        name.substr(10) == ".bsg") {
      const std::string id_str = name.substr(4, 6);
      // A stray file like "seg-00000a.bsg" is not ours: skip it rather
      // than letting std::stoull throw std::invalid_argument (callers only
      // expect util::DecodeError from this constructor).
      if (std::all_of(id_str.begin(), id_str.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
          })) {
        ids.push_back(std::stoull(id_str));
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) {
    const std::string path = segment_path(id);
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    in.close();
    if (bytes.size() < kSegmentHeaderBytes ||
        get_le32(bytes.data()) != kSegmentMagic) {
      throw util::DecodeError("segment store: bad segment magic in " + path);
    }
    if (get_le32(bytes.data() + 4) != kSegmentVersion) {
      throw util::DecodeError("segment store: unknown segment version in " +
                              path);
    }
    Segment segment;
    segment.id = id;
    segment.sealed = true;
    std::uint64_t pos = kSegmentHeaderBytes;
    // Parse records until the tail runs out; a torn final record is
    // truncated away (mirrors WAL torn-tail recovery).
    while (bytes.size() - pos >= kRecordHeaderBytes) {
      const std::uint8_t* p = bytes.data() + pos;
      ChunkKey key;
      key.hash = get_le64(p);
      key.crc = get_le32(p + 8);
      key.size = get_le32(p + 12);
      const std::uint32_t stored = get_le32(p + 16);
      const std::uint8_t encoding = p[20];
      if (key.size > kMaxChunkRaw || stored > kMaxChunkRaw || encoding > 1 ||
          stored > bytes.size() - pos - kRecordHeaderBytes) {
        break;  // torn or garbage tail
      }
      if (!directory_.count(key)) {
        Entry e;
        e.segment = id;
        e.offset = pos + kRecordHeaderBytes;
        e.stored = stored;
        e.raw = key.size;
        e.encoding = encoding;
        directory_.emplace(key, e);
        segment.dead_bytes += stored;  // everything starts unpinned
      }
      pos += kRecordHeaderBytes + stored;
    }
    if (pos < bytes.size()) {
      fs::resize_file(path, pos);
      obs::count("store.segment.truncated_tails");
      obs::count("store.segment.truncated_bytes",
                 static_cast<double>(bytes.size() - pos));
    }
    segment.bytes = pos;
    segments_.emplace(id, segment);
    next_segment_id_ = std::max(next_segment_id_, id + 1);
  }
}

void SegmentStore::open_new_segment_locked() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
  if (auto it = segments_.find(open_segment_); it != segments_.end()) {
    it->second.sealed = true;
  }
  Segment segment;
  segment.id = next_segment_id_++;
  segment.bytes = kSegmentHeaderBytes;
  open_segment_ = segment.id;
  if (options_.dir.empty()) {
    put_le32(segment.memory, kSegmentMagic);
    put_le32(segment.memory, kSegmentVersion);
  } else {
    out_.open(segment_path(segment.id),
              std::ios::binary | std::ios::trunc);
    std::vector<std::uint8_t> header;
    put_le32(header, kSegmentMagic);
    put_le32(header, kSegmentVersion);
    out_.write(reinterpret_cast<const char*>(header.data()),
               static_cast<std::streamsize>(header.size()));
    out_.flush();
  }
  segments_.emplace(segment.id, std::move(segment));
}

SegmentStore::Prepared SegmentStore::prepare(
    std::span<const std::uint8_t> raw) {
  Prepared prepared;
  prepared.key = ChunkKey{
      .hash = util::content_hash64(raw),
      .crc = util::crc32(raw),
      .size = static_cast<std::uint32_t>(raw.size()),
  };
  std::vector<std::uint8_t> packed = util::lz_compress(raw);
  if (packed.size() < raw.size()) {
    prepared.stored = std::move(packed);
    prepared.encoding = 1;
  } else {
    prepared.stored.assign(raw.begin(), raw.end());
    prepared.encoding = 0;
  }
  return prepared;
}

void SegmentStore::append_locked(const Prepared& prepared) {
  if (directory_.count(prepared.key)) {
    ++dedup_hits_;
    obs::count("store.chunk.dedup_hits");
    return;
  }
  Segment& open = segments_.at(open_segment_);
  if (open.bytes >= options_.segment_target_bytes + kSegmentHeaderBytes) {
    open_new_segment_locked();
  }
  Segment& segment = segments_.at(open_segment_);
  std::vector<std::uint8_t> record;
  record.reserve(kRecordHeaderBytes + prepared.stored.size());
  put_le64(record, prepared.key.hash);
  put_le32(record, prepared.key.crc);
  put_le32(record, prepared.key.size);
  put_le32(record, static_cast<std::uint32_t>(prepared.stored.size()));
  record.push_back(prepared.encoding);
  record.insert(record.end(), prepared.stored.begin(), prepared.stored.end());

  Entry entry;
  entry.segment = segment.id;
  entry.offset = segment.bytes + kRecordHeaderBytes;
  entry.stored = static_cast<std::uint32_t>(prepared.stored.size());
  entry.raw = prepared.key.size;
  entry.encoding = prepared.encoding;

  if (options_.dir.empty()) {
    segment.memory.insert(segment.memory.end(), record.begin(), record.end());
  } else {
    out_.write(reinterpret_cast<const char*>(record.data()),
               static_cast<std::streamsize>(record.size()));
  }
  segment.bytes += record.size();
  segment.dead_bytes += entry.stored;  // live once an owner pins it
  directory_.emplace(prepared.key, entry);
  obs::count("store.chunk.writes");
  obs::count("store.chunk.stored_bytes",
             static_cast<double>(prepared.stored.size()));
}

ChunkKey SegmentStore::put(std::span<const std::uint8_t> raw) {
  Prepared prepared = prepare(raw);
  std::lock_guard<std::mutex> lock(mutex_);
  append_locked(prepared);
  return prepared.key;
}

std::size_t SegmentStore::put_manifest_payload(
    const Manifest& manifest, std::span<const std::uint8_t> payload,
    bool pin_chunks) {
  // Find missing chunks under the lock, compress them outside it (in
  // parallel when a pool is attached), then append in manifest order.
  std::vector<std::size_t> missing;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < manifest.chunks.size(); ++i) {
      if (directory_.count(manifest.chunks[i])) {
        ++dedup_hits_;
        obs::count("store.chunk.dedup_hits");
      } else {
        missing.push_back(i);
      }
    }
  }
  std::vector<Prepared> prepared(missing.size());
  const auto compress_one = [&](std::size_t j) {
    prepared[j] = prepare(chunk_bytes(payload, manifest, missing[j]));
  };
  if (options_.pool != nullptr && missing.size() > 1) {
    options_.pool->parallel_for(missing.size(), compress_one);
  } else {
    for (std::size_t j = 0; j < missing.size(); ++j) compress_one(j);
  }
  std::size_t written = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t j = 0;  // index into prepared/missing, both in manifest order
  for (std::size_t i = 0; i < manifest.chunks.size(); ++i) {
    const ChunkKey& key = manifest.chunks[i];
    if (j < missing.size() && missing[j] == i) {
      const bool fresh = !directory_.count(prepared[j].key);
      append_locked(prepared[j]);
      if (fresh) ++written;
      ++j;
    } else if (!directory_.count(key)) {
      // Present at the first check but reclaimed by a concurrent
      // compaction since (it was unpinned).  Re-prepare inline under the
      // lock so the manifest never references an absent chunk on return.
      append_locked(prepare(chunk_bytes(payload, manifest, i)));
      ++written;
    }
    // Pinning inside the same critical section as the presence guarantee:
    // once we return, no compaction can have reclaimed these chunks.
    if (pin_chunks) pin_locked(key);
  }
  return written;
}

Manifest SegmentStore::put_payload(std::span<const std::uint8_t> payload) {
  return put_payload(payload, options_.chunk_size);
}

Manifest SegmentStore::put_payload(std::span<const std::uint8_t> payload,
                                   std::uint32_t chunk_size) {
  Manifest manifest = build_manifest(payload, chunk_size);
  put_manifest_payload(manifest, payload);
  return manifest;
}

Manifest SegmentStore::put_payload_pinned(
    std::span<const std::uint8_t> payload) {
  Manifest manifest = build_manifest(payload, options_.chunk_size);
  put_manifest_payload(manifest, payload, /*pin_chunks=*/true);
  return manifest;
}

bool SegmentStore::contains(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return directory_.count(key) != 0;
}

std::vector<std::uint8_t> SegmentStore::read_stored_locked(
    const Entry& entry) {
  const Segment& segment = segments_.at(entry.segment);
  std::vector<std::uint8_t> stored(entry.stored);
  if (options_.dir.empty()) {
    std::copy_n(segment.memory.begin() +
                    static_cast<std::ptrdiff_t>(entry.offset),
                entry.stored, stored.begin());
    return stored;
  }
  if (entry.segment == open_segment_ && out_.is_open()) out_.flush();
  std::ifstream in(segment_path(entry.segment), std::ios::binary);
  in.seekg(static_cast<std::streamoff>(entry.offset));
  in.read(reinterpret_cast<char*>(stored.data()), entry.stored);
  if (in.gcount() != static_cast<std::streamsize>(entry.stored)) {
    throw util::DecodeError("segment store: short read (truncated segment)");
  }
  return stored;
}

std::vector<std::uint8_t> SegmentStore::get(const ChunkKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = cache_index_.find(key); it != cache_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++cache_hits_;
    obs::count("store.cache.hits");
    return it->second->second;
  }
  ++cache_misses_;
  obs::count("store.cache.misses");
  const auto dir_it = directory_.find(key);
  if (dir_it == directory_.end()) {
    throw util::DecodeError("segment store: missing chunk");
  }
  std::vector<std::uint8_t> stored = read_stored_locked(dir_it->second);
  std::vector<std::uint8_t> raw =
      dir_it->second.encoding == 1 ? util::lz_decompress(stored)
                                   : std::move(stored);
  if (raw.size() != key.size || util::crc32(raw) != key.crc ||
      util::content_hash64(raw) != key.hash) {
    throw util::DecodeError("segment store: chunk failed checksum");
  }
  cache_insert_locked(key, raw);
  return raw;
}

std::vector<std::uint8_t> SegmentStore::get_payload(const Manifest& manifest) {
  std::vector<std::uint8_t> payload;
  payload.reserve(manifest.total_bytes);
  for (const ChunkKey& key : manifest.chunks) {
    const std::vector<std::uint8_t> raw = get(key);
    payload.insert(payload.end(), raw.begin(), raw.end());
  }
  if (payload.size() != manifest.total_bytes ||
      util::content_hash64(payload) != manifest.content_hash) {
    throw util::DecodeError("segment store: payload failed content hash");
  }
  return payload;
}

void SegmentStore::cache_insert_locked(const ChunkKey& key,
                                       std::vector<std::uint8_t> raw) {
  if (raw.size() > options_.cache_capacity_bytes) return;
  cache_bytes_ += raw.size();
  lru_.emplace_front(key, std::move(raw));
  cache_index_[key] = lru_.begin();
  while (cache_bytes_ > options_.cache_capacity_bytes && !lru_.empty()) {
    cache_bytes_ -= lru_.back().second.size();
    cache_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void SegmentStore::pin(const ChunkKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  pin_locked(key);
}

void SegmentStore::pin_locked(const ChunkKey& key) {
  const auto it = directory_.find(key);
  if (it == directory_.end()) {
    throw util::DecodeError("segment store: pin of missing chunk");
  }
  if (it->second.pins++ == 0) {
    Segment& segment = segments_.at(it->second.segment);
    segment.dead_bytes -= it->second.stored;
    segment.live_bytes += it->second.stored;
  }
}

void SegmentStore::pin(const std::vector<ChunkKey>& keys) {
  for (const ChunkKey& key : keys) pin(key);
}

void SegmentStore::unpin(const ChunkKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = directory_.find(key);
  if (it == directory_.end() || it->second.pins == 0) return;
  if (--it->second.pins == 0) {
    Segment& segment = segments_.at(it->second.segment);
    segment.live_bytes -= it->second.stored;
    segment.dead_bytes += it->second.stored;
  }
}

void SegmentStore::unpin(const std::vector<ChunkKey>& keys) {
  for (const ChunkKey& key : keys) unpin(key);
}

void SegmentStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_.flush();
}

void SegmentStore::rewrite_segment_locked(std::uint64_t segment_id) {
  // Collect the victim's entries; live ones move to the open segment in
  // offset order (deterministic), dead ones are dropped.
  std::vector<std::pair<std::uint64_t, ChunkKey>> live;
  std::vector<ChunkKey> dead;
  for (const auto& [key, entry] : directory_) {
    if (entry.segment != segment_id) continue;
    if (entry.pins > 0) {
      live.emplace_back(entry.offset, key);
    } else {
      dead.push_back(key);
    }
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [offset, key] : live) {
    Entry& entry = directory_.at(key);
    std::vector<std::uint8_t> stored = read_stored_locked(entry);
    Segment& open = segments_.at(open_segment_);
    if (open.bytes >= options_.segment_target_bytes + kSegmentHeaderBytes) {
      open_new_segment_locked();
    }
    Segment& target = segments_.at(open_segment_);
    std::vector<std::uint8_t> record;
    record.reserve(kRecordHeaderBytes + stored.size());
    put_le64(record, key.hash);
    put_le32(record, key.crc);
    put_le32(record, key.size);
    put_le32(record, static_cast<std::uint32_t>(stored.size()));
    record.push_back(entry.encoding);
    record.insert(record.end(), stored.begin(), stored.end());
    if (options_.dir.empty()) {
      target.memory.insert(target.memory.end(), record.begin(), record.end());
    } else {
      out_.write(reinterpret_cast<const char*>(record.data()),
                 static_cast<std::streamsize>(record.size()));
    }
    entry.segment = target.id;
    entry.offset = target.bytes + kRecordHeaderBytes;
    target.bytes += record.size();
    target.live_bytes += entry.stored;  // still pinned at its new home
    obs::count("store.compaction.moved_chunks");
    obs::count("store.compaction.moved_bytes",
               static_cast<double>(stored.size()));
  }
  for (const ChunkKey& key : dead) {
    cache_index_.erase(key);  // iterator stays valid in lru_; purge lazily
    directory_.erase(key);
  }
  // Purge any cache entries whose list node belonged to dropped keys.
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (cache_index_.count(it->first)) {
      ++it;
    } else {
      cache_bytes_ -= it->second.size();
      it = lru_.erase(it);
    }
  }
  segments_.erase(segment_id);
  if (!options_.dir.empty()) {
    // The live chunks just rewritten above may still sit in out_'s
    // userspace buffer; they must reach the filesystem before the only
    // other copy is deleted, or a crash in between loses durable pinned
    // chunks (the same write-ahead rule WAL append follows).
    if (out_.is_open()) out_.flush();
    std::error_code ec;
    fs::remove(segment_path(segment_id), ec);
  }
  ++compactions_;
  obs::count("store.compaction.segments_reclaimed");
}

std::size_t SegmentStore::compact_locked(double dead_ratio,
                                         bool enforce_ceiling) {
  std::size_t reclaimed = 0;
  // Pass 1: every sealed segment whose dead fraction exceeds the ratio.
  std::vector<std::uint64_t> victims;
  for (const auto& [id, segment] : segments_) {
    if (!segment.sealed) continue;
    const std::uint64_t payload = segment.live_bytes + segment.dead_bytes;
    if (payload == 0) {
      victims.push_back(id);  // empty sealed segment: pure overhead
      continue;
    }
    if (static_cast<double>(segment.dead_bytes) /
            static_cast<double>(payload) >
        dead_ratio) {
      victims.push_back(id);
    }
  }
  for (const std::uint64_t id : victims) {
    rewrite_segment_locked(id);
    ++reclaimed;
  }
  // Pass 2: while over the disk ceiling, reclaim the deadest sealed
  // segment (sealing the open one if it is the only holder of dead bytes).
  if (enforce_ceiling && options_.disk_ceiling_bytes > 0) {
    for (;;) {
      std::uint64_t disk = 0;
      for (const auto& [id, segment] : segments_) disk += segment.bytes;
      if (disk <= options_.disk_ceiling_bytes) break;
      std::uint64_t best = 0;
      std::uint64_t best_dead = 0;
      for (const auto& [id, segment] : segments_) {
        if (!segment.sealed) continue;
        if (segment.dead_bytes > best_dead) {
          best_dead = segment.dead_bytes;
          best = id;
        }
      }
      if (best_dead == 0) {
        const Segment& open = segments_.at(open_segment_);
        if (open.dead_bytes == 0) break;  // nothing reclaimable
        open_new_segment_locked();
        continue;
      }
      rewrite_segment_locked(best);
      ++reclaimed;
    }
  }
  return reclaimed;
}

std::size_t SegmentStore::compact(double dead_ratio) {
  std::lock_guard<std::mutex> lock(mutex_);
  return compact_locked(dead_ratio, /*enforce_ceiling=*/false);
}

std::size_t SegmentStore::maybe_compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  return compact_locked(options_.compact_dead_ratio,
                        /*enforce_ceiling=*/true);
}

SegmentStore::Stats SegmentStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.chunks = directory_.size();
  stats.segments = segments_.size();
  for (const auto& [id, segment] : segments_) {
    stats.disk_bytes += segment.bytes;
    stats.live_bytes += segment.live_bytes;
    stats.dead_bytes += segment.dead_bytes;
  }
  for (const auto& [key, entry] : directory_) stats.raw_bytes += entry.raw;
  stats.dedup_hits = dedup_hits_;
  stats.cache_hits = cache_hits_;
  stats.cache_misses = cache_misses_;
  stats.compactions = compactions_;
  return stats;
}

std::uint64_t SegmentStore::disk_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t disk = 0;
  for (const auto& [id, segment] : segments_) disk += segment.bytes;
  return disk;
}

}  // namespace bees::store
