// Per-shard primary -> follower replication by WAL shipping.
//
// A ReplicationGroup is one cluster shard slot backed by 1 + F Shard
// instances: the active primary plus F standby followers.  Every mutation
// the cluster applies to the primary is re-encoded as exactly the frame
// the primary's on-disk WAL carries —
//
//   u32 body length | u32 CRC-32(body) | body
//
// where the body is encode_wal_record (inline) or, with a segment store
// attached, encode_wal_record_chunked: the payload lives in the
// content-addressed store and the frame carries only its manifest, so a
// record whose chunks the store already holds (they were just written by
// the primary's own WAL append) ships as a few dozen manifest bytes.
// Shipped chunks are pinned (put_payload_pinned) until every follower has
// acknowledged the frame, so a checkpoint-triggered compaction on the
// primary can never reclaim a chunk a ship frame still references.
//
// Shipping is asynchronous with a bounded per-follower queue: frames
// accumulate until the queue reaches `ship_queue_cap`, then the follower
// drains (applies every queued frame, acknowledging by sequence number).
// Queries never read followers, so follower lag is invisible to replies.
// The two events that demand parity force a drain first:
//
//   kill_active() — deterministic failover.  Every live follower is
//   drained to the primary's sequence, the primary is marked dead, and the
//   follower with the highest acknowledged sequence (ties to the lowest
//   index) is promoted.  Because promotion happens at apply-parity, the
//   promoted instance's state is byte-for-byte the state the primary would
//   have had, and every subsequent query is answered identically to a
//   never-killed group.  Durable groups persist the promotion in a term
//   file so a restart recovers the promoted timeline, and snapshot-install
//   any instance the term left behind (the killed primary's stale dir, a
//   follower that crashed mid-ship) from the active's encode_snapshot().
//
//   checkpoint() — every instance snapshots its own durable dir.
//
// A follower detects redelivery (seq <= its last applied: idempotent
// no-op) and gaps (seq skips ahead: std::logic_error) — see
// Shard::apply_replicated.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "serve/backend.hpp"

namespace bees::replica {

struct ReplicationOptions {
  /// Standby followers behind the primary (>= 0; 0 degenerates to an
  /// unreplicated slot whose kill_active is refused).
  int followers = 1;
  /// Frames queued to one follower before it is synchronously drained.
  std::size_t ship_queue_cap = 64;
};

class ReplicationGroup final : public serve::ShardBackend {
 public:
  /// `shard_options` describes the primary; follower j lives under
  /// `<dir>/replica-<j>` (in-memory when dir is empty) and shares the
  /// segment store, checkpoint cadence, and index params.  With a durable
  /// dir, construction recovers every instance from its own snapshot + WAL
  /// tail, restores the term (which instance is active, how many failovers
  /// happened), and catches stale instances up by snapshot install.
  ReplicationGroup(int shard_id, const serve::ShardOptions& shard_options,
                   const ReplicationOptions& options);

  // Queries read active() without the cluster's mutation lock, so the
  // active index is published atomically: kill_active() fully drains the
  // promoted follower *before* the release-store, and a query that loads
  // the new index (acquire) sees its complete state.
  serve::Shard& active() override {
    return *instances_[static_cast<std::size_t>(
        active_.load(std::memory_order_acquire))];
  }
  const serve::Shard& active() const override {
    return *instances_[static_cast<std::size_t>(
        active_.load(std::memory_order_acquire))];
  }

  idx::ImageId apply(serve::WalRecord record) override;
  void checkpoint() override;
  bool kill_active() override;
  serve::BackendResilience resilience() const override;

  /// Brings every live follower to the active's sequence (applies all
  /// queued ship frames).  kill_active and checkpoint call this; tests use
  /// it to assert parity directly.
  void drain_all();

  int instance_count() const {
    return static_cast<int>(instances_.size());
  }
  bool instance_alive(int i) const {
    return alive_[static_cast<std::size_t>(i)];
  }
  int active_index() const {
    return active_.load(std::memory_order_acquire);
  }
  std::uint64_t acked_seq(int i) const {
    return acked_seq_[static_cast<std::size_t>(i)];
  }
  /// Test access to a specific instance (e.g. comparing a follower's state
  /// against the primary's after a drain).
  serve::Shard& instance(int i) {
    return *instances_[static_cast<std::size_t>(i)];
  }

 private:
  /// One frame queued to followers; chunk pins are released when the last
  /// subscribed follower acknowledges.
  struct ShipFrame {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> frame;  ///< len|crc|body, as on disk.
    std::vector<store::ChunkKey> pins;
    int unacked = 0;  ///< Followers still holding a reference.
  };

  serve::ShardOptions instance_options(int i) const;
  std::string term_path() const;
  void persist_term() const;
  void drain_follower(std::size_t i);
  void release_frame(const std::shared_ptr<ShipFrame>& frame);

  const int shard_id_;
  serve::ShardOptions base_options_;
  ReplicationOptions options_;
  std::vector<std::unique_ptr<serve::Shard>> instances_;
  std::vector<bool> alive_;
  std::vector<std::uint64_t> acked_seq_;
  /// Per-follower ship queues (index parallel to instances_; the active's
  /// queue is always empty).
  std::vector<std::deque<std::shared_ptr<ShipFrame>>> queues_;
  std::atomic<int> active_{0};
  std::uint64_t failovers_ = 0;
  std::uint64_t ship_records_ = 0;
  std::uint64_t ship_bytes_ = 0;
  std::uint64_t ship_lag_max_ = 0;
  std::uint64_t catch_ups_ = 0;
};

/// A BackendFactory giving every cluster shard slot `followers` standbys:
/// plug into serve::ClusterOptions::backend_factory.
serve::BackendFactory make_replicated_factory(
    int followers, std::size_t ship_queue_cap = 64);

}  // namespace bees::replica
