#include "replica/replication.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "serve/shard.hpp"
#include "serve/wal.hpp"
#include "util/byte_io.hpp"
#include "util/hash.hpp"

namespace bees::replica {

namespace {

constexpr std::uint32_t kTermMagic = 0x4D545242;  // "BRTM"
constexpr std::uint32_t kTermVersion = 1;

}  // namespace

ReplicationGroup::ReplicationGroup(int shard_id,
                                   const serve::ShardOptions& shard_options,
                                   const ReplicationOptions& options)
    : shard_id_(shard_id), base_options_(shard_options), options_(options) {
  if (options_.followers < 0) {
    throw std::invalid_argument("replica: follower count must be >= 0");
  }
  if (options_.ship_queue_cap == 0) {
    throw std::invalid_argument("replica: ship queue cap must be >= 1");
  }
  const std::size_t n = static_cast<std::size_t>(options_.followers) + 1;

  // Recover the term first: it names which instance's timeline is
  // authoritative, and therefore which instance the stale ones are caught
  // up from.
  if (!base_options_.dir.empty()) {
    std::ifstream in(term_path(), std::ios::binary);
    if (in) {
      std::vector<std::uint8_t> bytes(
          (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
      util::ByteReader reader(bytes);
      if (reader.get_u32() != kTermMagic || reader.get_u32() != kTermVersion) {
        throw std::runtime_error("replica: unrecognized term file");
      }
      const int active = static_cast<int>(reader.get_u32());
      failovers_ = reader.get_u64();
      if (active < 0 || static_cast<std::size_t>(active) >= n) {
        throw std::runtime_error("replica: term names a missing instance");
      }
      active_.store(active, std::memory_order_relaxed);
    }
  }

  instances_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    instances_.push_back(std::make_unique<serve::Shard>(
        shard_id_, instance_options(static_cast<int>(i))));
  }
  alive_.assign(n, true);
  queues_.resize(n);
  acked_seq_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    acked_seq_[i] = instances_[i]->last_applied_seq();
  }

  // Snapshot-install every instance whose recovered sequence diverges from
  // the active's: the killed primary's stale dir after a failover, or a
  // follower that crashed mid-ship.  (The replaced instance's recovery may
  // have pinned snapshot chunks it no longer references — a benign
  // over-pin; pins only defer reclaim, never correctness.)
  const int cur = active_.load(std::memory_order_relaxed);
  const std::uint64_t target = acked_seq_[static_cast<std::size_t>(cur)];
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == cur || acked_seq_[i] == target) continue;
    const std::vector<std::uint8_t> snapshot =
        instances_[static_cast<std::size_t>(cur)]->encode_snapshot();
    instances_[i] = std::make_unique<serve::Shard>(
        shard_id_, instance_options(static_cast<int>(i)), snapshot);
    acked_seq_[i] = instances_[i]->last_applied_seq();
    ++catch_ups_;
    obs::count("replica.catch_up");
  }
}

serve::ShardOptions ReplicationGroup::instance_options(int i) const {
  serve::ShardOptions o = base_options_;
  if (i > 0 && !o.dir.empty()) {
    o.dir += "/replica-" + std::to_string(i);
  }
  return o;
}

std::string ReplicationGroup::term_path() const {
  return base_options_.dir + "/replica.term";
}

void ReplicationGroup::persist_term() const {
  util::ByteWriter writer;
  writer.put_u32(kTermMagic);
  writer.put_u32(kTermVersion);
  writer.put_u32(
      static_cast<std::uint32_t>(active_.load(std::memory_order_relaxed)));
  writer.put_u64(failovers_);
  const std::string tmp = term_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(writer.bytes().data()),
              static_cast<std::streamsize>(writer.size()));
    if (!out) throw std::runtime_error("replica: cannot write term file");
  }
  std::filesystem::rename(tmp, term_path());
}

idx::ImageId ReplicationGroup::apply(serve::WalRecord record) {
  const int cur = active_.load(std::memory_order_relaxed);
  serve::Shard& primary = *instances_[static_cast<std::size_t>(cur)];
  const idx::ImageId local = primary.apply(record);
  record.seq = primary.last_applied_seq();

  int subscribers = 0;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (alive_[i] && static_cast<int>(i) != cur) ++subscribers;
  }
  if (subscribers == 0) return local;

  // Re-encode as exactly the frame the primary's WAL carries.  With a
  // store, chunks are pinned here — the primary's own WAL pin is released
  // whenever its auto-checkpoint resets the log, which can happen before
  // any follower drains.
  auto frame = std::make_shared<ShipFrame>();
  frame->seq = record.seq;
  frame->unacked = subscribers;
  std::vector<std::uint8_t> body;
  if (base_options_.segment_store != nullptr && !record.payload.empty()) {
    const store::Manifest manifest =
        base_options_.segment_store->put_payload_pinned(record.payload);
    base_options_.segment_store->flush();
    frame->pins = manifest.chunks;
    body = serve::encode_wal_record_chunked(record, manifest);
  } else {
    body = serve::encode_wal_record(record);
  }
  util::ByteWriter writer;
  writer.put_u32(static_cast<std::uint32_t>(body.size()));
  writer.put_u32(util::crc32(body));
  writer.put_bytes(body);
  frame->frame = writer.take();

  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (!alive_[i] || static_cast<int>(i) == cur) continue;
    queues_[i].push_back(frame);
    ++ship_records_;
    ship_bytes_ += frame->frame.size();
    ship_lag_max_ = std::max<std::uint64_t>(ship_lag_max_, queues_[i].size());
    obs::count("replica.ship.records");
    obs::count("replica.ship.bytes",
               static_cast<double>(frame->frame.size()));
    if (queues_[i].size() >= options_.ship_queue_cap) drain_follower(i);
  }
  return local;
}

void ReplicationGroup::drain_follower(std::size_t i) {
  while (!queues_[i].empty()) {
    std::shared_ptr<ShipFrame> frame = std::move(queues_[i].front());
    queues_[i].pop_front();
    util::ByteReader reader(frame->frame);
    const std::uint32_t len = reader.get_u32();
    const std::uint32_t crc = reader.get_u32();
    const std::vector<std::uint8_t> body = reader.get_bytes(len);
    if (util::crc32(body) != crc) {
      throw std::runtime_error("replica: ship frame CRC mismatch");
    }
    const serve::WalRecord record =
        serve::decode_wal_record(body, base_options_.segment_store);
    instances_[i]->apply_replicated(record);
    acked_seq_[i] = frame->seq;
    release_frame(frame);
  }
}

void ReplicationGroup::release_frame(const std::shared_ptr<ShipFrame>& frame) {
  if (--frame->unacked > 0) return;
  if (!frame->pins.empty() && base_options_.segment_store != nullptr) {
    base_options_.segment_store->unpin(frame->pins);
  }
}

void ReplicationGroup::drain_all() {
  const int cur = active_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (alive_[i] && static_cast<int>(i) != cur) drain_follower(i);
  }
}

bool ReplicationGroup::kill_active() {
  const int cur = active_.load(std::memory_order_relaxed);
  int standbys = 0;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (alive_[i] && static_cast<int>(i) != cur) ++standbys;
  }
  if (standbys == 0) return false;

  // Parity before promotion: after the drain every live follower has
  // applied the primary's full history, so whichever is promoted answers
  // queries byte-identically to the instance it replaces.  The
  // release-store publishes that fully-drained state to lock-free
  // readers of active().
  drain_all();
  alive_[static_cast<std::size_t>(cur)] = false;

  int best = -1;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (!alive_[i]) continue;
    if (best < 0 || acked_seq_[i] > acked_seq_[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  active_.store(best, std::memory_order_release);
  ++failovers_;
  obs::count("replica.failover");
  if (!base_options_.dir.empty()) persist_term();
  return true;
}

void ReplicationGroup::checkpoint() {
  drain_all();
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (alive_[i]) instances_[i]->checkpoint();
  }
}

serve::BackendResilience ReplicationGroup::resilience() const {
  serve::BackendResilience r;
  r.failovers = failovers_;
  r.ship_records = ship_records_;
  r.ship_bytes = ship_bytes_;
  r.ship_lag_max = ship_lag_max_;
  r.catch_ups = catch_ups_;
  const int cur = active_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (alive_[i] && static_cast<int>(i) != cur) ++r.live_standbys;
  }
  return r;
}

serve::BackendFactory make_replicated_factory(int followers,
                                              std::size_t ship_queue_cap) {
  ReplicationOptions options;
  options.followers = followers;
  options.ship_queue_cap = ship_queue_cap;
  return [options](int shard_id, const serve::ShardOptions& shard_options) {
    return std::make_unique<ReplicationGroup>(shard_id, shard_options,
                                              options);
  };
}

}  // namespace bees::replica
