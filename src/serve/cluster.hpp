// The serving cluster frontend: N durable shards behind a worker pool and
// an admission gate.  Requests arrive as encoded cloud::rpc envelopes; a
// bounded number are in flight at once (excess load is shed with an encoded
// error reply, never a throw), workers drain the queue, and similarity
// queries fan out to every shard and merge exactly:
//
//   phase 1 gathers each shard's candidate ranking (deterministically
//   tie-broken by global id), merges and truncates to the single-index
//   candidate budget; phase 2 rescores each surviving candidate on the
//   shard that owns its features; detail::finalize_top_k orders the merged
//   hits.  Because every shard assigns local ids in global-id order, the
//   result is byte-identical to one serial cloud::Server for any shard or
//   thread count.
//
// Stores are routed by geotag cell (images of the same place dedupe against
// the same shard's index without fan-out on the write path) or by global id
// when untagged, and are serialized through the cluster mutation lock: the
// write path is single-writer by design — BEES serves a read-dominated
// query workload — which keeps global id assignment, WAL append order, and
// the routing tables trivially consistent.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cloud/server.hpp"
#include "net/transport.hpp"
#include "serve/backend.hpp"
#include "serve/shard.hpp"
#include "util/thread_pool.hpp"

namespace bees::serve {

/// Error text of the admission gate's shed reply.  Part of the client
/// contract: a reply decoding to an error with exactly this message is a
/// *retryable* overload signal (back off and resend), unlike other encoded
/// errors which are terminal.  fleet::classify_reply keys on it.
inline constexpr const char* kShedErrorMessage =
    "server overloaded: request shed";

struct ClusterOptions {
  int shards = 1;
  /// Worker threads draining the request queue (minimum 1).
  int threads = 1;
  /// Admission bound: requests in flight (queued + executing) before new
  /// arrivals are shed with an encoded error reply.
  std::size_t queue_depth = 256;
  /// Admission-gate coalescing window: when > 1, admitted requests are
  /// queued and a worker drains up to this many at once through
  /// handle_coalesced, so queued similarity queries share one batched
  /// fan-out (each shard packs a candidate's descriptors once per batch
  /// instead of once per query).  Replies are byte-identical to
  /// batch_window = 1 for every request; only latency/throughput shifts.
  /// Batch sizes actually formed are observable as the `serve.batch.size`
  /// histogram.
  std::size_t batch_window = 1;
  /// Durability root (one subdirectory per shard); empty = in-memory only.
  /// When set, construction recovers from the latest snapshots + WAL tails.
  std::string data_dir;
  /// Per-shard mutations between automatic checkpoints; 0 = WAL only.
  std::size_t checkpoint_every = 0;
  /// Crash-window test hook, forwarded to each shard (see ShardOptions).
  bool wal_reset_on_checkpoint = true;
  /// Content-addressed segment store shared by every shard (WAL bodies +
  /// snapshots) and by the wire chunk-upload plane (kChunkManifest /
  /// kChunkData / kChunkCommit requests).  Enabled when
  /// `segment_store.dir` is non-empty or `enable_segment_store` is true
  /// (the latter with an empty dir runs memory-backed — durable state
  /// falls back to inline WAL/snapshot bytes being unavailable across
  /// restarts, so pair it with data_dir only in tests).  Unless the caller
  /// supplies one, the store compresses chunks on the cluster's worker
  /// pool.  Chunk requests answered without a store decode to the
  /// kChunkStoreDisabledMessage error, and uploaders fall back to whole
  /// images.
  bool enable_segment_store = false;
  store::SegmentStoreOptions segment_store;
  /// How each shard slot is backed.  Unset = make_single_backend (one bare
  /// Shard per slot, kill_primary refused).  Install
  /// replica::make_replicated_factory to give every shard WAL-shipping
  /// standby followers and deterministic failover; the cluster's query and
  /// mutation planes are oblivious to the choice (see serve/backend.hpp).
  BackendFactory backend_factory;
  idx::FeatureIndexParams binary_params;
  idx::FloatFeatureIndex::Params float_params;
};

/// One query of a batched binary fan-out (Cluster::query_binary_batch).
/// `features` is borrowed and must outlive the call.
struct BinaryBatchItem {
  const feat::BinaryFeatures* features = nullptr;
  double feature_bytes = 0.0;
  idx::QueryOptions options;
};

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Serves one encoded rpc envelope through the admission gate and worker
  /// pool; blocks until the reply is ready.  Thread-safe; never throws a
  /// request error — malformed input, internal failures, and shed load all
  /// come back as net::encode_error replies, mirroring cloud::dispatch.
  /// With `options.batch_window` > 1, admitted requests are queued and
  /// drained in coalesced batches (see handle_coalesced); the reply for
  /// each request is unchanged.
  std::vector<std::uint8_t> handle(const std::vector<std::uint8_t>& request);

  /// Serves a group of encoded envelopes as one coalesced unit: every
  /// similarity query the group carries (kBinaryQuery payloads and each
  /// entry of a kBatchQuery) joins a single query_binary_batch fan-out;
  /// any other envelope type is dispatched individually.  replies[i] is
  /// byte-identical to handle(requests[i]) — coalescing is an
  /// amortization, never a semantic change.  Bypasses the admission gate:
  /// callers (the gate's own drain loop, the fleet's deterministic
  /// batcher) do their own admission.  Thread-safe.
  std::vector<std::vector<std::uint8_t>> handle_coalesced(
      const std::vector<std::vector<std::uint8_t>>& requests);

  /// The cluster as a net::Transport server handler.
  net::Transport::Handler handler();

  /// Direct-call plane, mirroring cloud::Server's entry points (same
  /// accounting, same results) for seeding and in-process callers.  Store
  /// and seed ids returned are *global* ids.
  idx::QueryResult query_binary(const feat::BinaryFeatures& features,
                                double feature_bytes,
                                int top_k = idx::kDefaultTopK);
  /// QueryOptions overload: carries the ANN recall_target knob.  The
  /// shortlist budget is computed by idx::candidate_budget from the same
  /// (params, recall_target) pair the shards use, which keeps the merged
  /// reply byte-identical to a single serial server's.
  idx::QueryResult query_binary(const feat::BinaryFeatures& features,
                                double feature_bytes,
                                const idx::QueryOptions& query_options);
  /// Batched fan-out: results[q] is byte-identical to
  /// query_binary(*items[q].features, items[q].feature_bytes,
  /// items[q].options) for any shard/thread/batch-size combination —
  /// per-(query, image) scores are pure pair functions and the per-query
  /// merge path is unchanged — but phase 2 rescoring runs through each
  /// shard's batched plane, packing every candidate image once per batch.
  std::vector<idx::QueryResult> query_binary_batch(
      const std::vector<BinaryBatchItem>& items);
  idx::QueryResult query_float(const feat::FloatFeatures& features,
                               double feature_bytes,
                               int top_k = idx::kDefaultTopK);
  double query_global(const feat::ColorHistogram& histogram,
                      const idx::GeoTag& geo, double feature_bytes = 0.0,
                      double geo_radius_deg = 0.005);
  idx::ImageId store_binary(const feat::BinaryFeatures& features,
                            const cloud::StoreInfo& info = {});
  idx::ImageId store_float(const feat::FloatFeatures& features,
                           const cloud::StoreInfo& info = {});
  void store_global(const feat::ColorHistogram& histogram,
                    const cloud::StoreInfo& info = {});
  void store_plain(const cloud::StoreInfo& info = {});
  void seed_binary(const feat::BinaryFeatures& features,
                   const idx::GeoTag& geo = {}, double thumbnail_bytes = 0.0);
  void seed_float(const feat::FloatFeatures& features,
                  const idx::GeoTag& geo = {});
  void seed_global(const feat::ColorHistogram& histogram,
                   const idx::GeoTag& geo = {});

  /// Thumbnail feedback size of a binary-indexed global id; 0 when unknown.
  double thumbnail_bytes_of(idx::ImageId gid) const;

  /// Aggregated accounting, shaped exactly like one serial server's:
  /// store-side numbers summed over shards, unique locations as the union
  /// of shard location sets, query counters tracked at the frontend.
  /// After recovery, store-derived stats are restored; query counters
  /// restart from zero (queries are not journaled).
  cloud::ServerStats stats() const;

  /// Snapshots every shard now (and truncates their WALs); with a segment
  /// store attached this also runs its compaction trigger.
  void checkpoint();

  /// The shared segment store; nullptr when not enabled.
  store::SegmentStore* segment_store() noexcept { return store_.get(); }

  /// Requests shed by the admission gate since construction.
  std::size_t shed_count() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }

  int shard_count() const noexcept {
    return static_cast<int>(backends_.size());
  }

  /// Kills shard `shard`'s active instance and promotes a standby at
  /// apply-parity (see ShardBackend::kill_active).  Returns false — and
  /// changes nothing — when the backend has no standby to promote
  /// (single-instance backends, or a group whose standbys are exhausted).
  /// Serialized against mutations, so a kill always lands between applies;
  /// queries before and after a successful kill are answered
  /// byte-identically to a never-killed cluster.
  bool kill_primary(int shard);

  /// Replication/failover counters summed over every shard backend; all
  /// zeros under the default single-instance factory.
  BackendResilience resilience() const;

  /// Every binary-indexed image merged into one standalone index in global
  /// id order — what bees_sim --save-index persists from a cluster run.
  idx::FeatureIndex merged_binary_index() const;
  /// Seeds the cluster from a standalone index snapshot (--load-index).
  void preload_binary(const idx::FeatureIndex& index);

 private:
  /// gid -> owning shard + local id; shard < 0 marks a hole (a global id
  /// whose record was lost to a torn WAL tail — benign: nothing references
  /// an unindexed id).
  struct Location {
    int shard = -1;
    idx::ImageId local = idx::kInvalidImageId;
  };

  std::size_t route(const idx::GeoTag& geo, std::uint32_t gid) const;
  std::vector<std::uint8_t> route_request(
      const std::vector<std::uint8_t>& request);
  /// route_request with the worker-task exception fences (never throws).
  std::vector<std::uint8_t> route_request_noexcept(
      const std::vector<std::uint8_t>& request);
  /// Drains up to batch_window queued gate jobs through handle_coalesced
  /// and fulfills their promises; no-op when another drain emptied the
  /// queue first.  Runs on the worker pool.
  void drain_batch_queue();
  /// Routes, WAL-logs and applies one mutation (caller holds
  /// mutation_mutex_).  For indexed ops the routing-table entry is published
  /// *before* the shard applies — the local id is predicted from the
  /// per-shard counter, which the mutation lock keeps exact — so a
  /// concurrent query can never surface a candidate gid the table lacks.
  idx::ImageId apply_mutation(WalOp op, const idx::GeoTag& geo,
                              WalRecord record,
                              std::vector<Location>* locations,
                              std::vector<idx::ImageId>* next_local,
                              std::uint32_t gid);

  ClusterOptions options_;
  /// The store's compression pool must be distinct from the request pool
  /// (parallel_for from inside a worker task would self-deadlock) and must
  /// outlive the store; both precede shards_, which hold store pointers.
  std::unique_ptr<util::ThreadPool> store_pool_;
  std::unique_ptr<store::SegmentStore> store_;
  std::vector<std::unique_ptr<ShardBackend>> backends_;
  std::unique_ptr<util::ThreadPool> pool_;

  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> shed_{0};

  /// Gate-coalescing queue (batch_window > 1 only): admitted requests wait
  /// here until a worker drains a batch of them.  Every arrival submits one
  /// drain task, so no job can be stranded; a drain that finds the queue
  /// already emptied by a peer simply returns.
  struct BatchJob {
    std::vector<std::uint8_t> request;
    std::shared_ptr<std::promise<std::vector<std::uint8_t>>> promise;
  };
  std::mutex batch_mutex_;
  std::deque<BatchJob> batch_queue_;

  /// Serializes stores/seeds: gid assignment, WAL append order, and routing
  /// table growth stay consistent without finer-grained ordering.
  std::mutex mutation_mutex_;
  std::uint32_t next_binary_gid_ = 0;
  std::uint32_t next_float_gid_ = 0;
  std::uint32_t next_unrouted_ = 0;  // routing counter for gid-less ops
  /// Per-shard next local index id (mutation_mutex_ only).
  std::vector<idx::ImageId> next_binary_local_;
  std::vector<idx::ImageId> next_float_local_;

  mutable std::mutex maps_mutex_;
  std::vector<Location> binary_locations_;
  std::vector<Location> float_locations_;

  mutable std::mutex stats_mutex_;
  std::size_t binary_queries_ = 0;
  std::size_t float_queries_ = 0;
  double query_feature_bytes_ = 0.0;
};

}  // namespace bees::serve
