#include "serve/wal.hpp"

#include "obs/metrics.hpp"
#include "util/byte_io.hpp"
#include "util/hash.hpp"

namespace bees::serve {

namespace {

// Everything up to the payload section, shared by both encoders.
void put_record_head(util::ByteWriter& w, const WalRecord& record,
                     std::uint8_t op_byte) {
  w.put_u64(record.seq);
  w.put_u8(op_byte);
  w.put_varint(record.global_id);
  w.put_f64(record.info.image_bytes);
  w.put_u8(record.info.geo.valid ? 1 : 0);
  w.put_f64(record.info.geo.lon);
  w.put_f64(record.info.geo.lat);
  w.put_f64(record.info.thumbnail_bytes);
}

}  // namespace

std::vector<std::uint8_t> encode_wal_record(const WalRecord& record) {
  util::ByteWriter w;
  put_record_head(w, record, static_cast<std::uint8_t>(record.op));
  w.put_varint(record.payload.size());
  w.put_bytes(record.payload);
  return w.take();
}

std::vector<std::uint8_t> encode_wal_record_chunked(
    const WalRecord& record, const store::Manifest& manifest) {
  util::ByteWriter w;
  put_record_head(w, record,
                  static_cast<std::uint8_t>(record.op) | kWalChunkedFlag);
  store::put_manifest(w, manifest);
  return w.take();
}

WalRecord decode_wal_record(const std::vector<std::uint8_t>& bytes,
                            store::SegmentStore* chunk_store,
                            std::vector<store::ChunkKey>* keys_out) {
  util::ByteReader r(bytes);
  WalRecord record;
  record.seq = r.get_u64();
  const std::uint8_t op_byte = r.get_u8();
  const bool chunked = (op_byte & kWalChunkedFlag) != 0;
  const std::uint8_t op = op_byte & ~kWalChunkedFlag;
  if (op < static_cast<std::uint8_t>(WalOp::kStoreBinary) ||
      op > static_cast<std::uint8_t>(WalOp::kSeedGlobal)) {
    throw util::DecodeError("wal record: unknown op");
  }
  record.op = static_cast<WalOp>(op);
  record.global_id = static_cast<std::uint32_t>(r.get_varint());
  record.info.image_bytes = r.get_f64();
  record.info.geo.valid = r.get_u8() != 0;
  record.info.geo.lon = r.get_f64();
  record.info.geo.lat = r.get_f64();
  record.info.thumbnail_bytes = r.get_f64();
  if (chunked) {
    const store::Manifest manifest = store::get_manifest(r);
    if (!r.done()) throw util::DecodeError("wal record: trailing bytes");
    if (chunk_store == nullptr) {
      throw util::DecodeError("wal record: chunked record without a store");
    }
    record.payload = chunk_store->get_payload(manifest);
    if (keys_out) {
      keys_out->insert(keys_out->end(), manifest.chunks.begin(),
                       manifest.chunks.end());
    }
  } else {
    const auto payload_len = static_cast<std::size_t>(r.get_varint());
    record.payload = r.get_bytes(payload_len);
    if (!r.done()) throw util::DecodeError("wal record: trailing bytes");
  }
  return record;
}

std::vector<std::uint8_t> encode_histogram(const feat::ColorHistogram& h) {
  util::ByteWriter w;
  for (float bin : h.bins) w.put_f32(bin);
  return w.take();
}

feat::ColorHistogram decode_histogram(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  feat::ColorHistogram h;
  for (float& bin : h.bins) bin = r.get_f32();
  if (!r.done()) throw util::DecodeError("histogram: trailing bytes");
  return h;
}

WriteAheadLog::WriteAheadLog(std::string path,
                             store::SegmentStore* chunk_store)
    : path_(std::move(path)), chunk_store_(chunk_store) {
  open(/*truncate=*/false);
}

void WriteAheadLog::open(bool truncate) {
  out_.close();
  out_.clear();
  out_.open(path_, truncate ? std::ios::binary | std::ios::trunc
                            : std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("WriteAheadLog: cannot open " + path_);
  }
}

void WriteAheadLog::append(const WalRecord& record) {
  std::vector<std::uint8_t> payload;
  if (chunk_store_ && !record.payload.empty()) {
    // Write-ahead extends to the store: the chunks must be durable before
    // the frame that references them, or a crash in between leaves a valid
    // frame pointing at nothing (replay would mistake it for a torn tail
    // and silently drop every record after it on the next append).  The
    // pins are taken atomically with the put — shards share this store, and
    // another shard's checkpoint-triggered compaction could otherwise
    // reclaim the still-unpinned chunks between put and pin.
    const store::Manifest manifest =
        chunk_store_->put_payload_pinned(record.payload);
    chunk_store_->flush();
    pinned_.insert(pinned_.end(), manifest.chunks.begin(),
                   manifest.chunks.end());
    payload = encode_wal_record_chunked(record, manifest);
  } else {
    payload = encode_wal_record(record);
  }
  util::ByteWriter frame;
  frame.put_u32(static_cast<std::uint32_t>(payload.size()));
  frame.put_u32(util::crc32(payload));
  frame.put_bytes(payload);
  const auto& bytes = frame.bytes();
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("WriteAheadLog: append failed for " + path_);
  }
}

void WriteAheadLog::reset() {
  open(/*truncate=*/true);
  if (chunk_store_) chunk_store_->unpin(pinned_);
  pinned_.clear();
}

void WriteAheadLog::adopt_pins(std::vector<store::ChunkKey> keys) {
  pinned_.insert(pinned_.end(), keys.begin(), keys.end());
}

WalReplayResult replay_wal(
    const std::string& path, std::uint64_t after_seq,
    const std::function<void(const WalRecord&)>& apply,
    store::SegmentStore* chunk_store) {
  WalReplayResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // No log yet: nothing to replay.
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  std::size_t pos = 0;
  while (pos < bytes.size()) {
    // A frame shorter than its header, a length pointing past EOF, a CRC
    // mismatch, or an undecodable payload all mean the tail is torn or
    // corrupt: stop at the last intact record.
    if (bytes.size() - pos < 8) break;
    auto le32 = [&](std::size_t at) {
      return static_cast<std::uint32_t>(bytes[at]) |
             static_cast<std::uint32_t>(bytes[at + 1]) << 8 |
             static_cast<std::uint32_t>(bytes[at + 2]) << 16 |
             static_cast<std::uint32_t>(bytes[at + 3]) << 24;
    };
    const std::uint32_t len = le32(pos);
    const std::uint32_t crc = le32(pos + 4);
    if (len > bytes.size() - pos - 8) break;
    std::vector<std::uint8_t> payload(bytes.begin() + pos + 8,
                                      bytes.begin() + pos + 8 + len);
    if (util::crc32(payload) != crc) break;
    WalRecord record;
    std::vector<store::ChunkKey> record_keys;
    try {
      record = decode_wal_record(payload, chunk_store, &record_keys);
    } catch (const util::DecodeError&) {
      break;
    }
    pos += 8 + len;
    result.chunk_keys.insert(result.chunk_keys.end(), record_keys.begin(),
                             record_keys.end());
    if (record.seq <= after_seq) {
      ++result.skipped;
      continue;
    }
    apply(record);
    ++result.applied;
  }
  result.valid_bytes = pos;
  if (pos < bytes.size()) {
    result.dropped = 1;
    result.dropped_bytes = bytes.size() - pos;
    obs::count("serve.wal.dropped_records",
               static_cast<double>(result.dropped));
    obs::count("serve.wal.dropped_bytes",
               static_cast<double>(result.dropped_bytes));
  }
  return result;
}

}  // namespace bees::serve
