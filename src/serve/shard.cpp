#include "serve/shard.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "index/persistence.hpp"
#include "index/serialize.hpp"
#include "obs/metrics.hpp"
#include "util/byte_io.hpp"
#include "util/compress.hpp"

namespace bees::serve {
namespace {

// "BSRV" little-endian; distinct from the index snapshot magics so a shard
// snapshot handed to load_index_snapshot (or vice versa) fails loudly.
constexpr std::uint32_t kShardMagic = 0x56525342;
constexpr std::uint32_t kShardVersion = 1;
// "BSMN" little-endian: the snapshot.manifest file (store-backed snapshots)
// — a chunk manifest standing in for the snapshot bytes held by the store.
constexpr std::uint32_t kManifestFileMagic = 0x4E4D5342;

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("shard snapshot: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("shard snapshot: write failed " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("shard snapshot: cannot open " + path);
  return {(std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>()};
}

void put_geo(util::ByteWriter& w, const idx::GeoTag& geo) {
  w.put_u8(geo.valid ? 1 : 0);
  w.put_f64(geo.lon);
  w.put_f64(geo.lat);
}

idx::GeoTag get_geo(util::ByteReader& r) {
  idx::GeoTag geo;
  geo.valid = r.get_u8() != 0;
  geo.lon = r.get_f64();
  geo.lat = r.get_f64();
  return geo;
}

}  // namespace

Shard::Shard(int id, const ShardOptions& options)
    : id_(id),
      options_(options),
      server_(options.binary_params, options.float_params) {
  if (options_.dir.empty()) return;
  std::filesystem::create_directories(options_.dir);
  recover();
  wal_ = std::make_unique<WriteAheadLog>(wal_path(), options_.segment_store);
  wal_->adopt_pins(std::move(wal_recovered_pins_));
  wal_recovered_pins_.clear();
}

Shard::Shard(int id, const ShardOptions& options,
             const std::vector<std::uint8_t>& snapshot)
    : id_(id),
      options_(options),
      server_(options.binary_params, options.float_params) {
  if (!options_.dir.empty()) {
    // The stale history under dir is superseded wholesale by the installed
    // snapshot; keeping its WAL would replay records the snapshot already
    // covers (harmless) or, worse, records past a divergence point.
    std::filesystem::remove_all(options_.dir);
    std::filesystem::create_directories(options_.dir);
  }
  restore_snapshot(snapshot);
  if (!options_.dir.empty()) {
    wal_ = std::make_unique<WriteAheadLog>(wal_path(), options_.segment_store);
    checkpoint_locked();  // durably seed the installed state
  }
}

std::string Shard::wal_path() const { return options_.dir + "/wal.log"; }

std::string Shard::snapshot_path() const {
  return options_.dir + "/snapshot.bin";
}

std::string Shard::manifest_path() const {
  return options_.dir + "/snapshot.manifest";
}

idx::ImageId Shard::apply(WalRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.seq = ++seq_;
  if (wal_) wal_->append(record);  // Write-ahead: log before apply.
  idx::ImageId local = idx::kInvalidImageId;
  apply_locked(record, &local);
  ++mutations_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      mutations_since_checkpoint_ >= options_.checkpoint_every) {
    checkpoint_locked();
  }
  return local;
}

idx::ImageId Shard::apply_replicated(const WalRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (record.seq <= seq_) return idx::kInvalidImageId;  // redelivery: no-op
  if (record.seq != seq_ + 1) {
    throw std::logic_error("shard: replicated record skips a sequence number");
  }
  seq_ = record.seq;
  if (wal_) wal_->append(record);  // Write-ahead: log before apply.
  idx::ImageId local = idx::kInvalidImageId;
  apply_locked(record, &local);
  ++mutations_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      mutations_since_checkpoint_ >= options_.checkpoint_every) {
    checkpoint_locked();
  }
  return local;
}

void Shard::apply_locked(const WalRecord& record, idx::ImageId* local_out) {
  idx::ImageId local = idx::kInvalidImageId;
  switch (record.op) {
    case WalOp::kStoreBinary:
      local = server_.store_binary(idx::deserialize_binary(record.payload),
                                   record.info);
      binary_globals_.push_back(record.global_id);
      break;
    case WalOp::kSeedBinary:
      local = static_cast<idx::ImageId>(binary_globals_.size());
      server_.seed_binary(idx::deserialize_binary(record.payload),
                          record.info.geo, record.info.thumbnail_bytes);
      binary_globals_.push_back(record.global_id);
      break;
    case WalOp::kStoreFloat:
      local = server_.store_float(idx::deserialize_float(record.payload),
                                  record.info);
      float_globals_.push_back(record.global_id);
      break;
    case WalOp::kSeedFloat:
      local = static_cast<idx::ImageId>(float_globals_.size());
      server_.seed_float(idx::deserialize_float(record.payload),
                         record.info.geo);
      float_globals_.push_back(record.global_id);
      break;
    case WalOp::kStoreGlobal:
      server_.store_global(decode_histogram(record.payload), record.info);
      break;
    case WalOp::kSeedGlobal:
      server_.seed_global(decode_histogram(record.payload), record.info.geo);
      break;
    case WalOp::kStorePlain:
      server_.store_plain(record.info);
      break;
  }
  if (local_out) *local_out = local;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> Shard::binary_candidates(
    const feat::BinaryFeatures& features, double recall_target) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto locals =
      server_.binary_index().candidates(features, recall_target);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(locals.size());
  // local -> global is monotone (locals are appended in global-id order),
  // so the (votes desc, local asc) ranking is also (votes desc, gid asc).
  for (const auto& [local, votes] : locals) {
    out.emplace_back(binary_globals_[local], votes);
  }
  return out;
}

idx::QueryResult Shard::rescore_binary(const feat::BinaryFeatures& features,
                                       const std::vector<idx::ImageId>& locals,
                                       int top_k) const {
  std::lock_guard<std::mutex> lock(mutex_);
  idx::QueryResult result =
      server_.binary_index().rescore(features, locals, top_k);
  for (auto& hit : result.hits) hit.id = binary_globals_[hit.id];
  if (result.best_id != idx::kInvalidImageId) {
    result.best_id = binary_globals_[result.best_id];
  }
  return result;
}

std::vector<idx::QueryResult> Shard::rescore_binary_batch(
    const std::vector<const feat::BinaryFeatures*>& features,
    const std::vector<std::vector<idx::ImageId>>& locals,
    const std::vector<int>& top_k) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<idx::QueryResult> results =
      server_.binary_index().rescore_batch(features, locals, top_k);
  for (idx::QueryResult& result : results) {
    for (auto& hit : result.hits) hit.id = binary_globals_[hit.id];
    if (result.best_id != idx::kInvalidImageId) {
      result.best_id = binary_globals_[result.best_id];
    }
  }
  return results;
}

std::vector<std::pair<double, std::uint32_t>> Shard::float_candidates(
    const feat::FloatFeatures& features) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto locals = server_.float_index().centroid_candidates(features);
  std::vector<std::pair<double, std::uint32_t>> out;
  out.reserve(locals.size());
  for (const auto& [dist, local] : locals) {
    out.emplace_back(dist, float_globals_[local]);
  }
  return out;
}

idx::QueryResult Shard::rescore_float(const feat::FloatFeatures& features,
                                      const std::vector<idx::ImageId>& locals,
                                      int top_k) const {
  std::lock_guard<std::mutex> lock(mutex_);
  idx::QueryResult result =
      server_.float_index().rescore(features, locals, top_k);
  for (auto& hit : result.hits) hit.id = float_globals_[hit.id];
  if (result.best_id != idx::kInvalidImageId) {
    result.best_id = float_globals_[result.best_id];
  }
  return result;
}

double Shard::peek_global(const feat::ColorHistogram& histogram,
                          const idx::GeoTag& geo,
                          double geo_radius_deg) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return server_.peek_global(histogram, geo, geo_radius_deg);
}

double Shard::thumbnail_bytes_of_local(idx::ImageId local) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return server_.thumbnail_bytes_of(local);
}

std::pair<feat::BinaryFeatures, idx::GeoTag> Shard::binary_entry(
    idx::ImageId local) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {server_.binary_index().features_of(local),
          server_.binary_index().geo_of(local)};
}

cloud::ServerStats Shard::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return server_.stats();
}

std::vector<std::uint64_t> Shard::location_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return server_.location_keys();
}

ShardIdentity Shard::identity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {binary_globals_, float_globals_};
}

std::uint64_t Shard::last_applied_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::vector<std::uint8_t> Shard::encode_snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return encode_snapshot_locked();
}

void Shard::checkpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  checkpoint_locked();
}

void Shard::checkpoint_locked() {
  if (options_.dir.empty()) return;
  const std::vector<std::uint8_t> bytes = encode_snapshot_locked();
  if (store::SegmentStore* st = options_.segment_store) {
    // Store-backed: snapshot bytes live as chunks (compressed by the store,
    // unchanged regions deduped against prior checkpoints and other
    // shards); the file published here is just the manifest.  The new
    // generation is pinned atomically with the put and before the manifest
    // is published — shards share this store, and a concurrent compaction
    // (another shard's checkpoint) could otherwise reclaim the unpinned
    // chunks and leave a published manifest referencing nothing.  The old
    // generation is unpinned only after publish, so chunks shared between
    // the two never transit a dead state.
    const store::Manifest manifest = st->put_payload_pinned(bytes);
    st->flush();
    util::ByteWriter w;
    w.put_u32(kManifestFileMagic);
    w.put_u32(kShardVersion);
    store::put_manifest(w, manifest);
    const std::string tmp = manifest_path() + ".tmp";
    try {
      write_file(tmp, w.bytes());
      std::filesystem::rename(tmp, manifest_path());
    } catch (...) {
      st->unpin(manifest.chunks);  // publish failed: old snapshot stands
      throw;
    }
    st->unpin(snapshot_pins_);
    snapshot_pins_ = manifest.chunks;
    // The manifest supersedes any inline snapshot left by a pre-store run.
    std::filesystem::remove(snapshot_path());
  } else {
    // Atomic publish: a crash mid-write leaves the old snapshot intact.
    const std::string tmp = snapshot_path() + ".tmp";
    write_file(tmp, util::lz_compress(bytes));
    std::filesystem::rename(tmp, snapshot_path());
    std::filesystem::remove(manifest_path());
  }
  if (wal_ && options_.wal_reset_on_checkpoint) wal_->reset();
  mutations_since_checkpoint_ = 0;
  if (options_.segment_store) options_.segment_store->maybe_compact();
  obs::count("serve.checkpoint");
}

std::vector<std::uint8_t> Shard::encode_snapshot_locked() {
  util::ByteWriter w;
  w.put_u32(kShardMagic);
  w.put_u32(kShardVersion);
  w.put_u64(seq_);

  const cloud::ServerStats& st = server_.stats();
  w.put_u64(st.images_stored);
  w.put_f64(st.image_bytes_received);
  w.put_f64(st.feature_bytes_received);
  w.put_u64(st.binary_queries);
  w.put_u64(st.float_queries);
  const std::vector<std::uint64_t> keys = server_.location_keys();
  w.put_varint(keys.size());
  for (std::uint64_t key : keys) w.put_u64(key);

  w.put_varint(binary_globals_.size());
  for (std::uint32_t gid : binary_globals_) w.put_varint(gid);
  for (std::size_t i = 0; i < binary_globals_.size(); ++i) {
    w.put_f64(server_.thumbnail_bytes_of(static_cast<idx::ImageId>(i)));
  }
  w.put_varint(float_globals_.size());
  for (std::uint32_t gid : float_globals_) w.put_varint(gid);

  const auto binary = idx::encode_index_snapshot(server_.binary_index());
  w.put_varint(binary.size());
  w.put_bytes(binary);
  const auto floats = idx::encode_float_index_snapshot(server_.float_index());
  w.put_varint(floats.size());
  w.put_bytes(floats);

  const auto& globals = server_.global_entries();
  w.put_varint(globals.size());
  for (const auto& [histogram, geo] : globals) {
    for (float bin : histogram.bins) w.put_f32(bin);
    put_geo(w, geo);
  }
  return w.take();
}

void Shard::recover() {
  store::SegmentStore* st = options_.segment_store;
  if (st && std::filesystem::exists(manifest_path())) {
    const auto file = read_file(manifest_path());
    util::ByteReader r(file);
    if (r.get_u32() != kManifestFileMagic) {
      throw util::DecodeError("shard snapshot manifest: bad magic");
    }
    if (r.get_u32() != kShardVersion) {
      throw util::DecodeError("shard snapshot manifest: unsupported version");
    }
    const store::Manifest manifest = store::get_manifest(r);
    if (!r.done()) {
      throw util::DecodeError("shard snapshot manifest: trailing bytes");
    }
    // get_payload verifies every chunk (and the whole-payload hash), so a
    // store that lost or corrupted snapshot chunks fails loudly here.
    restore_snapshot(st->get_payload(manifest));
    st->pin(manifest.chunks);
    snapshot_pins_ = manifest.chunks;
  } else if (std::filesystem::exists(manifest_path())) {
    // A store-backed run left a manifest but this shard has no store to
    // resolve it with: refusing is the only honest option (snapshot.bin
    // was deleted when the manifest was published).
    throw std::runtime_error(
        "shard: snapshot.manifest present but no segment store attached");
  } else if (std::filesystem::exists(snapshot_path())) {
    restore_snapshot(util::lz_decompress(read_file(snapshot_path())));
  }

  // Replay the WAL tail the snapshot does not cover; seq_ advances to the
  // last applied record so new mutations continue the sequence.
  const WalReplayResult replayed = replay_wal(
      wal_path(), seq_,
      [this](const WalRecord& record) {
        apply_locked(record, nullptr);
        seq_ = record.seq;
      },
      st);
  if (replayed.dropped > 0) {
    // Truncate the torn tail so future appends extend the valid prefix
    // instead of hiding behind garbage.
    std::filesystem::resize_file(wal_path(), replayed.valid_bytes);
  }
  if (st && !replayed.chunk_keys.empty()) {
    // Restart cleared every pin; re-establish the surviving WAL records'
    // claims.  The log itself takes these over once constructed, so its
    // next reset() releases them.
    st->pin(replayed.chunk_keys);
    wal_recovered_pins_ = replayed.chunk_keys;
  }
  obs::count("serve.recovery.replayed",
             static_cast<double>(replayed.applied));
}

void Shard::restore_snapshot(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  if (r.get_u32() != kShardMagic) {
    throw util::DecodeError("shard snapshot: bad magic");
  }
  if (r.get_u32() != kShardVersion) {
    throw util::DecodeError("shard snapshot: unsupported version");
  }
  seq_ = r.get_u64();

  cloud::ServerStats stats;
  stats.images_stored = static_cast<std::size_t>(r.get_u64());
  stats.image_bytes_received = r.get_f64();
  stats.feature_bytes_received = r.get_f64();
  stats.binary_queries = static_cast<std::size_t>(r.get_u64());
  stats.float_queries = static_cast<std::size_t>(r.get_u64());
  std::vector<std::uint64_t> keys(
      static_cast<std::size_t>(r.get_varint()));
  for (std::uint64_t& key : keys) key = r.get_u64();

  binary_globals_.resize(static_cast<std::size_t>(r.get_varint()));
  for (std::uint32_t& gid : binary_globals_) {
    gid = static_cast<std::uint32_t>(r.get_varint());
  }
  std::vector<double> thumbs(binary_globals_.size());
  for (double& t : thumbs) t = r.get_f64();
  float_globals_.resize(static_cast<std::size_t>(r.get_varint()));
  for (std::uint32_t& gid : float_globals_) {
    gid = static_cast<std::uint32_t>(r.get_varint());
  }

  const auto binary_bytes =
      r.get_bytes(static_cast<std::size_t>(r.get_varint()));
  const idx::FeatureIndex binary =
      idx::decode_index_snapshot(binary_bytes, options_.binary_params);
  const auto float_bytes =
      r.get_bytes(static_cast<std::size_t>(r.get_varint()));
  const idx::FloatFeatureIndex floats =
      idx::decode_float_index_snapshot(float_bytes, options_.float_params);
  if (binary.image_count() != binary_globals_.size() ||
      floats.image_count() != float_globals_.size()) {
    throw util::DecodeError("shard snapshot: id map / index size mismatch");
  }

  // Rebuild through seed_* (seeding records no stats), then reinstate the
  // accounting the snapshot carried.
  for (std::size_t i = 0; i < binary_globals_.size(); ++i) {
    const auto id = static_cast<idx::ImageId>(i);
    server_.seed_binary(binary.features_of(id), binary.geo_of(id),
                        thumbs[i]);
  }
  for (std::size_t i = 0; i < float_globals_.size(); ++i) {
    const auto id = static_cast<idx::ImageId>(i);
    server_.seed_float(floats.features_of(id), floats.geo_of(id));
  }
  const auto n_globals = static_cast<std::size_t>(r.get_varint());
  for (std::size_t i = 0; i < n_globals; ++i) {
    feat::ColorHistogram histogram;
    for (float& bin : histogram.bins) bin = r.get_f32();
    server_.seed_global(histogram, get_geo(r));
  }
  if (!r.done()) throw util::DecodeError("shard snapshot: trailing bytes");
  server_.restore_accounting(stats, keys);
}

}  // namespace bees::serve
