// One shard of the serving cluster: a cloud::Server behind its own mutex,
// made durable by a write-ahead log plus periodic snapshot checkpoints.
// The shard speaks in *global* image ids (assigned by the cluster frontend)
// and keeps the local<->global mapping itself; within a shard, local
// insertion order follows global id order, which is what lets per-shard
// top-k lists merge into exactly the single-server ranking.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cloud/server.hpp"
#include "serve/wal.hpp"

namespace bees::serve {

struct ShardOptions {
  /// Durability root for this shard (wal.log + snapshot.bin live here);
  /// empty = in-memory only, no WAL, no checkpoints.
  std::string dir;
  /// Optional content-addressed segment store (not owned; typically shared
  /// across shards by the cluster).  When set, WAL record bodies are
  /// chunked into it and snapshots are written as a chunk manifest
  /// (snapshot.manifest) instead of an inline snapshot.bin — unchanged
  /// index regions dedup across checkpoints and across shards.  A legacy
  /// snapshot.bin is still readable; the next checkpoint replaces it.
  store::SegmentStore* segment_store = nullptr;
  /// Mutations between automatic snapshot checkpoints; 0 = never (WAL only,
  /// or explicit checkpoint() calls).
  std::size_t checkpoint_every = 0;
  /// Crash-window test hook: when false, a checkpoint does NOT truncate the
  /// WAL, simulating a crash between snapshot rename and log reset.  The
  /// snapshot's sequence number must then keep replay from double-applying.
  bool wal_reset_on_checkpoint = true;
  idx::FeatureIndexParams binary_params;
  idx::FloatFeatureIndex::Params float_params;
};

/// Snapshot of a shard's identity mapping, read by the cluster after
/// recovery to rebuild its global routing tables.
struct ShardIdentity {
  std::vector<std::uint32_t> binary_globals;  ///< local id -> global id.
  std::vector<std::uint32_t> float_globals;
};

class Shard {
 public:
  /// Opens the shard; when `options.dir` is set, recovers state from the
  /// latest snapshot plus the WAL tail (a torn tail is truncated to the
  /// last intact record, never replayed).
  Shard(int id, const ShardOptions& options);

  /// Snapshot install (replica catch-up): the shard's initial state is
  /// `snapshot` (encode_snapshot output of a peer) instead of whatever its
  /// dir holds.  A durable dir is wiped and re-seeded with a checkpoint of
  /// the installed state, so the next restart recovers the caught-up shard
  /// rather than the stale one.
  Shard(int id, const ShardOptions& options,
        const std::vector<std::uint8_t>& snapshot);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Logs (write-ahead) and applies one mutation.  The record's sequence
  /// number is assigned here.  Returns the local index id for binary/float
  /// ops, kInvalidImageId otherwise.
  idx::ImageId apply(WalRecord record);

  /// Applies a record shipped from a replication primary, *preserving* the
  /// sequence number the primary assigned.  Idempotent below the follower's
  /// seq (a redelivered frame returns kInvalidImageId and changes nothing);
  /// a gap — record.seq beyond last_applied_seq() + 1 — throws
  /// std::logic_error, because applying past a hole would silently diverge
  /// the follower from the primary.  WAL-logged like apply(), so a
  /// follower's own crash recovery replays the shipped history.
  idx::ImageId apply_replicated(const WalRecord& record);

  /// Query phase 1: this shard's candidates as (global id, score), ranked
  /// (score desc, global id asc).  Scores come from the index's configured
  /// candidate path — deduplicated LSH votes, or the ANN shortlist sized by
  /// `recall_target` (see idx::FeatureIndex::candidates).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> binary_candidates(
      const feat::BinaryFeatures& features,
      double recall_target = idx::kDefaultRecallTarget) const;
  /// Query phase 2: exact rescore of `locals` (local ids, as mapped by the
  /// cluster); returned hits carry global ids.
  idx::QueryResult rescore_binary(const feat::BinaryFeatures& features,
                                  const std::vector<idx::ImageId>& locals,
                                  int top_k) const;
  /// Batched phase 2: every query's local candidate list rescored under one
  /// lock acquisition through the index's batched rescore plane (each
  /// stored image packed once, streamed against all subscribing queries).
  /// results[q] is byte-identical to
  /// rescore_binary(*features[q], locals[q], top_k[q]).
  std::vector<idx::QueryResult> rescore_binary_batch(
      const std::vector<const feat::BinaryFeatures*>& features,
      const std::vector<std::vector<idx::ImageId>>& locals,
      const std::vector<int>& top_k) const;

  /// Float-index counterparts; candidates are (centroid distance, gid)
  /// ranked (distance asc, global id asc).
  std::vector<std::pair<double, std::uint32_t>> float_candidates(
      const feat::FloatFeatures& features) const;
  idx::QueryResult rescore_float(const feat::FloatFeatures& features,
                                 const std::vector<idx::ImageId>& locals,
                                 int top_k) const;

  /// Best global-feature similarity on this shard (no accounting).
  double peek_global(const feat::ColorHistogram& histogram,
                     const idx::GeoTag& geo, double geo_radius_deg) const;

  double thumbnail_bytes_of_local(idx::ImageId local) const;
  /// One indexed image's features + geotag (copied out under the lock),
  /// for merged-index export.
  std::pair<feat::BinaryFeatures, idx::GeoTag> binary_entry(
      idx::ImageId local) const;

  cloud::ServerStats stats() const;
  std::vector<std::uint64_t> location_keys() const;
  ShardIdentity identity() const;
  std::uint64_t last_applied_seq() const;

  /// The shard's full state as snapshot bytes (the same encoding
  /// checkpoints persist) — what a replication group ships to catch a
  /// stale follower up before streaming the WAL tail.
  std::vector<std::uint8_t> encode_snapshot();

  /// Writes a snapshot now (atomic tmp+rename) and — unless the crash-window
  /// hook is off — truncates the WAL it makes redundant.  No-op without a
  /// durability dir.
  void checkpoint();

  int id() const noexcept { return id_; }

 private:
  void apply_locked(const WalRecord& record, idx::ImageId* local_out);
  void checkpoint_locked();
  void recover();
  std::vector<std::uint8_t> encode_snapshot_locked();
  void restore_snapshot(const std::vector<std::uint8_t>& bytes);
  std::string wal_path() const;
  std::string snapshot_path() const;
  std::string manifest_path() const;

  const int id_;
  ShardOptions options_;
  mutable std::mutex mutex_;
  cloud::Server server_;
  std::vector<std::uint32_t> binary_globals_;  // local id -> global id
  std::vector<std::uint32_t> float_globals_;
  std::uint64_t seq_ = 0;
  std::size_t mutations_since_checkpoint_ = 0;
  std::unique_ptr<WriteAheadLog> wal_;
  /// Chunks the current snapshot manifest pins (store-backed mode only);
  /// rotated — new pinned, old unpinned — on every checkpoint.
  std::vector<store::ChunkKey> snapshot_pins_;
  /// Pins recover() re-established for surviving WAL records, handed to
  /// the log (adopt_pins) once it exists so reset() releases them.
  std::vector<store::ChunkKey> wal_recovered_pins_;
};

}  // namespace bees::serve
