// Per-shard write-ahead log of store/seed operations.  Every index
// mutation is appended (and flushed) before it is applied, so a crash
// between checkpoints loses at most the record being written — and a torn
// tail is detected, not replayed: each record is framed as
//
//   u32 payload length | u32 CRC-32(payload) | payload bytes
//
// with the payload itself carrying a monotonically increasing per-shard
// sequence number.  Recovery replays records in order, skips those already
// covered by the latest snapshot (seq <= snapshot seq), and stops cleanly
// at the first truncated, CRC-damaged, or garbage frame, counting what it
// dropped (serve.wal.dropped_records).
//
// With a store::SegmentStore attached, record bodies route through the
// content-addressed chunk store instead of living inline in the frame: the
// op byte carries kWalChunkedFlag and the payload section is replaced by a
// chunk manifest (see DESIGN §12).  Chunks are written and flushed to the
// store *before* the frame that references them — the write-ahead rule
// extends to the store — and the log pins its records' chunks until reset()
// declares them snapshot-covered.  Replay resolves manifests through the
// store; a record whose chunks are missing or corrupt is a torn tail.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "cloud/server.hpp"
#include "index/feature_index.hpp"
#include "store/segment_store.hpp"

namespace bees::serve {

/// Which mutation a WAL record describes.  Stores count toward server
/// stats; seeds (experiment pre-population) do not — replay must preserve
/// the distinction or recovered accounting drifts.
enum class WalOp : std::uint8_t {
  kStoreBinary = 1,
  kStoreFloat = 2,
  kStoreGlobal = 3,
  kStorePlain = 4,
  kSeedBinary = 5,
  kSeedFloat = 6,
  kSeedGlobal = 7,
};

/// High bit of the on-disk op byte: the record's payload section is a
/// store::Manifest (resolved through the attached segment store) rather
/// than inline bytes.  Never set on WalRecord::op in memory.
inline constexpr std::uint8_t kWalChunkedFlag = 0x80;

/// One logged mutation.  `global_id` is the cluster-wide id the frontend
/// assigned (meaningful for binary/float ops; 0 otherwise).  `payload`
/// carries the op's feature bytes: serialize_binary / serialize_float
/// output, or a raw ColorHistogram (kBins f32s) for global ops.
struct WalRecord {
  std::uint64_t seq = 0;
  WalOp op = WalOp::kStorePlain;
  std::uint32_t global_id = 0;
  cloud::StoreInfo info;
  std::vector<std::uint8_t> payload;
};

/// Encodes a record's payload section (everything inside the CRC frame).
std::vector<std::uint8_t> encode_wal_record(const WalRecord& record);
/// Chunked form: the record's payload lives in the segment store under
/// `manifest` (which must describe exactly record.payload); the frame
/// carries the manifest and the op byte gains kWalChunkedFlag.
std::vector<std::uint8_t> encode_wal_record_chunked(
    const WalRecord& record, const store::Manifest& manifest);
/// Inverse of both encoders; throws util::DecodeError on bad bytes.  A
/// chunked record requires `chunk_store` (nullptr -> DecodeError) and
/// resolves its payload through it — a missing or corrupt chunk throws,
/// which replay treats as a torn tail.  When `keys_out` is non-null the
/// record's chunk keys (empty for inline records) are appended to it.
WalRecord decode_wal_record(const std::vector<std::uint8_t>& bytes,
                            store::SegmentStore* chunk_store = nullptr,
                            std::vector<store::ChunkKey>* keys_out = nullptr);

/// WAL payload codec for global-feature ops: kBins little-endian f32s.
std::vector<std::uint8_t> encode_histogram(const feat::ColorHistogram& h);
feat::ColorHistogram decode_histogram(const std::vector<std::uint8_t>& bytes);

/// Append-only log file.  Appends are flushed per record so the log is as
/// current as the OS page cache; a production deployment would fsync here.
class WriteAheadLog {
 public:
  /// With a store, non-empty record payloads are chunked into it (written
  /// and flushed before the referencing frame) and pinned until reset().
  explicit WriteAheadLog(std::string path,
                         store::SegmentStore* chunk_store = nullptr);

  /// Appends one framed record and flushes.  Throws std::runtime_error on
  /// I/O failure.
  void append(const WalRecord& record);

  /// Truncates the log (after a successful snapshot made it redundant) and
  /// unpins every chunk the truncated records referenced.
  void reset();

  /// Takes ownership of chunk pins recovery re-established for records
  /// already in the log, so reset() releases them too.
  void adopt_pins(std::vector<store::ChunkKey> keys);

  const std::string& path() const noexcept { return path_; }

 private:
  void open(bool truncate);

  std::string path_;
  store::SegmentStore* chunk_store_ = nullptr;
  std::vector<store::ChunkKey> pinned_;  ///< Keys pinned by live records.
  std::ofstream out_;
};

/// Outcome of a replay pass.
struct WalReplayResult {
  std::size_t applied = 0;  ///< Records decoded and handed to the callback.
  std::size_t skipped = 0;  ///< Valid records at or below `after_seq`.
  /// Records lost to a torn/corrupt tail: 1 for the frame that failed to
  /// parse (nothing past it is trusted), 0 for a clean end-of-file.
  std::size_t dropped = 0;
  std::size_t dropped_bytes = 0;  ///< Unparseable tail bytes discarded.
  /// Length of the intact prefix; recovery truncates the file here so new
  /// appends never land after garbage (which would orphan them).
  std::size_t valid_bytes = 0;
  /// Chunk keys referenced by every intact record (applied *and* skipped —
  /// skipped records stay in the file until the next reset).  The owner
  /// re-pins these after a restart, then hands them to the log via
  /// WriteAheadLog::adopt_pins.
  std::vector<store::ChunkKey> chunk_keys;
};

/// Replays `path` in write order, invoking `apply` for every record with
/// seq > after_seq.  Never throws on a damaged log — recovery's contract is
/// "restore the longest valid prefix"; a missing file replays zero records.
/// Chunked records resolve through `chunk_store`; one that cannot (store
/// absent, chunk missing or corrupt) ends the valid prefix like any torn
/// frame.  Charges serve.wal.dropped_records / serve.wal.dropped_bytes
/// metrics when observability is enabled.
WalReplayResult replay_wal(const std::string& path, std::uint64_t after_seq,
                           const std::function<void(const WalRecord&)>& apply,
                           store::SegmentStore* chunk_store = nullptr);

}  // namespace bees::serve
