// Per-shard write-ahead log of store/seed operations.  Every index
// mutation is appended (and flushed) before it is applied, so a crash
// between checkpoints loses at most the record being written — and a torn
// tail is detected, not replayed: each record is framed as
//
//   u32 payload length | u32 CRC-32(payload) | payload bytes
//
// with the payload itself carrying a monotonically increasing per-shard
// sequence number.  Recovery replays records in order, skips those already
// covered by the latest snapshot (seq <= snapshot seq), and stops cleanly
// at the first truncated, CRC-damaged, or garbage frame, counting what it
// dropped (serve.wal.dropped_records).
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "cloud/server.hpp"
#include "index/feature_index.hpp"

namespace bees::serve {

/// Which mutation a WAL record describes.  Stores count toward server
/// stats; seeds (experiment pre-population) do not — replay must preserve
/// the distinction or recovered accounting drifts.
enum class WalOp : std::uint8_t {
  kStoreBinary = 1,
  kStoreFloat = 2,
  kStoreGlobal = 3,
  kStorePlain = 4,
  kSeedBinary = 5,
  kSeedFloat = 6,
  kSeedGlobal = 7,
};

/// One logged mutation.  `global_id` is the cluster-wide id the frontend
/// assigned (meaningful for binary/float ops; 0 otherwise).  `payload`
/// carries the op's feature bytes: serialize_binary / serialize_float
/// output, or a raw ColorHistogram (kBins f32s) for global ops.
struct WalRecord {
  std::uint64_t seq = 0;
  WalOp op = WalOp::kStorePlain;
  std::uint32_t global_id = 0;
  cloud::StoreInfo info;
  std::vector<std::uint8_t> payload;
};

/// Encodes a record's payload section (everything inside the CRC frame).
std::vector<std::uint8_t> encode_wal_record(const WalRecord& record);
/// Inverse of encode_wal_record; throws util::DecodeError on bad bytes.
WalRecord decode_wal_record(const std::vector<std::uint8_t>& bytes);

/// WAL payload codec for global-feature ops: kBins little-endian f32s.
std::vector<std::uint8_t> encode_histogram(const feat::ColorHistogram& h);
feat::ColorHistogram decode_histogram(const std::vector<std::uint8_t>& bytes);

/// Append-only log file.  Appends are flushed per record so the log is as
/// current as the OS page cache; a production deployment would fsync here.
class WriteAheadLog {
 public:
  explicit WriteAheadLog(std::string path);

  /// Appends one framed record and flushes.  Throws std::runtime_error on
  /// I/O failure.
  void append(const WalRecord& record);

  /// Truncates the log (after a successful snapshot made it redundant).
  void reset();

  const std::string& path() const noexcept { return path_; }

 private:
  void open(bool truncate);

  std::string path_;
  std::ofstream out_;
};

/// Outcome of a replay pass.
struct WalReplayResult {
  std::size_t applied = 0;  ///< Records decoded and handed to the callback.
  std::size_t skipped = 0;  ///< Valid records at or below `after_seq`.
  /// Records lost to a torn/corrupt tail: 1 for the frame that failed to
  /// parse (nothing past it is trusted), 0 for a clean end-of-file.
  std::size_t dropped = 0;
  std::size_t dropped_bytes = 0;  ///< Unparseable tail bytes discarded.
  /// Length of the intact prefix; recovery truncates the file here so new
  /// appends never land after garbage (which would orphan them).
  std::size_t valid_bytes = 0;
};

/// Replays `path` in write order, invoking `apply` for every record with
/// seq > after_seq.  Never throws on a damaged log — recovery's contract is
/// "restore the longest valid prefix"; a missing file replays zero records.
/// Charges serve.wal.dropped_records / serve.wal.dropped_bytes metrics when
/// observability is enabled.
WalReplayResult replay_wal(const std::string& path, std::uint64_t after_seq,
                           const std::function<void(const WalRecord&)>& apply);

}  // namespace bees::serve
