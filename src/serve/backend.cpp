#include "serve/backend.hpp"

namespace bees::serve {
namespace {

class SingleBackend final : public ShardBackend {
 public:
  SingleBackend(int shard_id, const ShardOptions& options)
      : shard_(shard_id, options) {}

  Shard& active() override { return shard_; }
  const Shard& active() const override { return shard_; }

  idx::ImageId apply(WalRecord record) override {
    return shard_.apply(std::move(record));
  }

  void checkpoint() override { shard_.checkpoint(); }

  bool kill_active() override { return false; }  // nothing to promote

  BackendResilience resilience() const override { return {}; }

 private:
  Shard shard_;
};

}  // namespace

std::unique_ptr<ShardBackend> make_single_backend(int shard_id,
                                                  const ShardOptions& options) {
  return std::make_unique<SingleBackend>(shard_id, options);
}

}  // namespace bees::serve
