#include "serve/cluster.hpp"

#include <algorithm>
#include <future>
#include <optional>
#include <stdexcept>

#include "cloud/rpc.hpp"
#include "index/serialize.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/byte_io.hpp"

namespace bees::serve {
namespace {

/// splitmix64 finalizer: the router's stable hash.  Geotag cells and global
/// ids are both low-entropy sequences; the mix spreads them evenly over any
/// shard count.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Cluster::Cluster(const ClusterOptions& options) : options_(options) {
  const int n = std::max(1, options_.shards);
  options_.shards = n;
  if (options_.enable_segment_store || !options_.segment_store.dir.empty()) {
    store::SegmentStoreOptions store_options = options_.segment_store;
    if (store_options.pool == nullptr) {
      store_pool_ = std::make_unique<util::ThreadPool>(
          static_cast<std::size_t>(std::max(1, options_.threads)));
      store_options.pool = store_pool_.get();
    }
    // Constructed before any shard so recovery can resolve chunked WAL
    // records and snapshot manifests against the rebuilt directory.
    store_ = std::make_unique<store::SegmentStore>(store_options);
  }
  const BackendFactory factory =
      options_.backend_factory ? options_.backend_factory
                               : BackendFactory(make_single_backend);
  backends_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ShardOptions shard_options;
    if (!options_.data_dir.empty()) {
      shard_options.dir = options_.data_dir + "/shard-" + std::to_string(i);
    }
    shard_options.segment_store = store_.get();
    shard_options.checkpoint_every = options_.checkpoint_every;
    shard_options.wal_reset_on_checkpoint = options_.wal_reset_on_checkpoint;
    shard_options.binary_params = options_.binary_params;
    shard_options.float_params = options_.float_params;
    backends_.push_back(factory(i, shard_options));
  }
  next_binary_local_.assign(static_cast<std::size_t>(n), 0);
  next_float_local_.assign(static_cast<std::size_t>(n), 0);

  // Rebuild the global routing tables from what each shard recovered.  A
  // gid no shard claims (lost to a torn WAL tail) stays a hole.  A
  // replicated backend recovers its promoted instance (the persisted term
  // decides which), so the identity read here reflects any failover the
  // previous process lifetime committed.
  for (int s = 0; s < n; ++s) {
    const ShardIdentity identity =
        backends_[static_cast<std::size_t>(s)]->active().identity();
    for (std::size_t local = 0; local < identity.binary_globals.size();
         ++local) {
      const std::uint32_t gid = identity.binary_globals[local];
      if (gid >= binary_locations_.size()) binary_locations_.resize(gid + 1);
      binary_locations_[gid] = {s, static_cast<idx::ImageId>(local)};
    }
    next_binary_local_[static_cast<std::size_t>(s)] =
        static_cast<idx::ImageId>(identity.binary_globals.size());
    for (std::size_t local = 0; local < identity.float_globals.size();
         ++local) {
      const std::uint32_t gid = identity.float_globals[local];
      if (gid >= float_locations_.size()) float_locations_.resize(gid + 1);
      float_locations_[gid] = {s, static_cast<idx::ImageId>(local)};
    }
    next_float_local_[static_cast<std::size_t>(s)] =
        static_cast<idx::ImageId>(identity.float_globals.size());
  }
  next_binary_gid_ = static_cast<std::uint32_t>(binary_locations_.size());
  next_float_gid_ = static_cast<std::uint32_t>(float_locations_.size());

  pool_ = std::make_unique<util::ThreadPool>(
      static_cast<std::size_t>(std::max(1, options_.threads)));
}

std::size_t Cluster::route(const idx::GeoTag& geo, std::uint32_t gid) const {
  // Same-place images land on the same shard (their redundancy candidates
  // live where they do); untagged images spread by id.
  const std::uint64_t key =
      geo.valid ? idx::location_key(geo) : 0x8000000000000000ull + gid;
  return static_cast<std::size_t>(mix64(key) % backends_.size());
}

// ---------------------------------------------------------------------------
// Request plane.

std::vector<std::uint8_t> Cluster::handle(
    const std::vector<std::uint8_t>& request) {
  const std::size_t depth =
      pending_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (depth > options_.queue_depth) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.shed");
    return net::encode_error(kShedErrorMessage);
  }
  obs::gauge("serve.queue.depth", static_cast<double>(depth));
  obs::count("serve.requests");
  auto promise = std::make_shared<std::promise<std::vector<std::uint8_t>>>();
  std::future<std::vector<std::uint8_t>> reply = promise->get_future();
  if (options_.batch_window > 1) {
    // Coalescing gate: park the request; some worker's drain task (this
    // arrival's, or an earlier one's that grabs a bigger batch) serves it
    // through handle_coalesced.  One drain task per arrival means no job
    // can be stranded; a drain finding an emptied queue just returns.
    {
      std::lock_guard<std::mutex> lock(batch_mutex_);
      batch_queue_.push_back({request, promise});
    }
    pool_->submit([this] { drain_batch_queue(); });
  } else {
    pool_->submit([this, request, promise] {
      std::vector<std::uint8_t> bytes = route_request_noexcept(request);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      promise->set_value(std::move(bytes));
    });
  }
  return reply.get();
}

std::vector<std::uint8_t> Cluster::route_request_noexcept(
    const std::vector<std::uint8_t>& request) {
  try {
    return route_request(request);
  } catch (const std::exception& e) {
    // Worker tasks must never leak an exception (it would poison the
    // pool's first-error slot); everything becomes an error reply.
    return net::encode_error(e.what());
  } catch (...) {
    return net::encode_error("internal server error");
  }
}

void Cluster::drain_batch_queue() {
  std::vector<BatchJob> jobs;
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    const std::size_t take =
        std::min(options_.batch_window, batch_queue_.size());
    jobs.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      jobs.push_back(std::move(batch_queue_.front()));
      batch_queue_.pop_front();
    }
  }
  if (jobs.empty()) return;
  obs::observe("serve.batch.size", static_cast<double>(jobs.size()));
  std::vector<std::vector<std::uint8_t>> requests;
  requests.reserve(jobs.size());
  for (BatchJob& job : jobs) requests.push_back(std::move(job.request));
  std::vector<std::vector<std::uint8_t>> replies = handle_coalesced(requests);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    jobs[i].promise->set_value(std::move(replies[i]));
  }
}

std::vector<std::vector<std::uint8_t>> Cluster::handle_coalesced(
    const std::vector<std::vector<std::uint8_t>>& requests) {
  const std::size_t n = requests.size();
  std::vector<std::vector<std::uint8_t>> replies(n);

  // Plan: decode every query envelope up front so its queries can join one
  // batched fan-out; anything else — uploads, the chunk plane, malformed
  // envelopes — takes the per-request dispatch below, which reproduces
  // handle()'s replies (including its exact error strings) bit for bit.
  struct QueryPlan {
    bool is_batch = false;
    net::BinaryQueryRequest single;
    net::BatchQueryRequest batch;
    std::size_t first_item = 0;  ///< index into `items`
    std::size_t item_count = 0;
  };
  std::vector<std::optional<QueryPlan>> plans(n);
  for (std::size_t i = 0; i < n; ++i) {
    try {
      const net::Envelope env = net::open_envelope(requests[i]);
      if (env.type == net::MessageType::kBinaryQuery) {
        QueryPlan plan;
        plan.single = net::decode_binary_query(env.payload);
        plans[i] = std::move(plan);
      } else if (env.type == net::MessageType::kBatchQuery) {
        QueryPlan plan;
        plan.is_batch = true;
        plan.batch = net::decode_batch_query(env.payload);
        plans[i] = std::move(plan);
      }
    } catch (...) {
      // Malformed query envelope: the per-request path below replays the
      // decode and produces the identical error reply.
    }
  }
  // Flatten after planning so the item pointers into `plans` stay stable.
  std::vector<BinaryBatchItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    if (!plans[i]) continue;
    QueryPlan& plan = *plans[i];
    plan.first_item = items.size();
    if (plan.is_batch) {
      plan.item_count = plan.batch.features.size();
      for (std::size_t k = 0; k < plan.batch.features.size(); ++k) {
        BinaryBatchItem item;
        item.features = &plan.batch.features[k];
        item.feature_bytes = plan.batch.feature_bytes[k];
        item.options.top_k = plan.batch.top_k;
        items.push_back(item);
      }
    } else {
      plan.item_count = 1;
      BinaryBatchItem item;
      item.features = &plan.single.features;
      item.feature_bytes = plan.single.feature_bytes >= 0.0
                               ? plan.single.feature_bytes
                               : static_cast<double>(requests[i].size());
      item.options.top_k = plan.single.top_k;
      items.push_back(item);
    }
  }

  std::vector<idx::QueryResult> results;
  bool batched = true;
  try {
    results = query_binary_batch(items);
  } catch (...) {
    // Defensive: fall every query back to the per-request path rather than
    // leaving its reply empty.
    batched = false;
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!plans[i] || !batched) {
      replies[i] = route_request_noexcept(requests[i]);
      continue;
    }
    const QueryPlan& plan = *plans[i];
    if (plan.is_batch) {
      net::BatchQueryResponse reply;
      reply.verdicts.reserve(plan.item_count);
      for (std::size_t k = 0; k < plan.item_count; ++k) {
        const idx::QueryResult& result = results[plan.first_item + k];
        net::QueryResponse verdict;
        verdict.max_similarity = result.max_similarity;
        verdict.best_id = result.best_id;
        if (result.best_id != idx::kInvalidImageId) {
          verdict.thumbnail_bytes = thumbnail_bytes_of(result.best_id);
        }
        reply.verdicts.push_back(verdict);
      }
      replies[i] = net::encode(reply);
    } else {
      const idx::QueryResult& result = results[plan.first_item];
      net::QueryResponse reply;
      reply.max_similarity = result.max_similarity;
      reply.best_id = result.best_id;
      if (result.best_id != idx::kInvalidImageId) {
        reply.thumbnail_bytes = thumbnail_bytes_of(result.best_id);
      }
      replies[i] = net::encode(reply);
    }
  }
  return replies;
}

net::Transport::Handler Cluster::handler() {
  return [this](const std::vector<std::uint8_t>& request) {
    return handle(request);
  };
}

std::vector<std::uint8_t> Cluster::route_request(
    const std::vector<std::uint8_t>& request) {
  // Mirrors cloud::dispatch message-for-message (same decode paths, same
  // accounting rules, same error strings) with cluster entry points.
  try {
    const net::Envelope env = net::open_envelope(request);
    obs::ScopedSpan span("dispatch", "serve", obs::kLaneServer);
    switch (env.type) {
      case net::MessageType::kBinaryQuery: {
        const net::BinaryQueryRequest q =
            net::decode_binary_query(env.payload);
        const double accounted_bytes =
            q.feature_bytes >= 0.0 ? q.feature_bytes
                                   : static_cast<double>(request.size());
        const idx::QueryResult result =
            query_binary(q.features, accounted_bytes, q.top_k);
        net::QueryResponse reply;
        reply.max_similarity = result.max_similarity;
        reply.best_id = result.best_id;
        if (result.best_id != idx::kInvalidImageId) {
          reply.thumbnail_bytes = thumbnail_bytes_of(result.best_id);
        }
        return net::encode(reply);
      }
      case net::MessageType::kBatchQuery: {
        const net::BatchQueryRequest q = net::decode_batch_query(env.payload);
        net::BatchQueryResponse reply;
        reply.verdicts.reserve(q.features.size());
        for (std::size_t i = 0; i < q.features.size(); ++i) {
          const idx::QueryResult result =
              query_binary(q.features[i], q.feature_bytes[i], q.top_k);
          net::QueryResponse verdict;
          verdict.max_similarity = result.max_similarity;
          verdict.best_id = result.best_id;
          if (result.best_id != idx::kInvalidImageId) {
            verdict.thumbnail_bytes = thumbnail_bytes_of(result.best_id);
          }
          reply.verdicts.push_back(verdict);
        }
        return net::encode(reply);
      }
      case net::MessageType::kFloatQuery: {
        const net::FloatQueryRequest q = net::decode_float_query(env.payload);
        const double accounted_bytes =
            q.feature_bytes >= 0.0 ? q.feature_bytes
                                   : static_cast<double>(request.size());
        const idx::QueryResult result =
            query_float(q.features, accounted_bytes, q.top_k);
        net::QueryResponse reply;
        reply.max_similarity = result.max_similarity;
        reply.best_id = result.best_id;
        return net::encode(reply);
      }
      case net::MessageType::kGlobalQuery: {
        const net::GlobalQueryRequest q =
            net::decode_global_query(env.payload);
        net::QueryResponse reply;
        reply.max_similarity =
            query_global(q.histogram, q.geo, q.feature_bytes,
                         q.geo_radius_deg);
        return net::encode(reply);
      }
      case net::MessageType::kImageUpload: {
        const net::ImageUploadRequest u =
            net::decode_image_upload(env.payload);
        net::UploadAck ack;
        ack.id = store_binary(u.features,
                              {u.image_bytes, u.geo, u.thumbnail_bytes});
        return net::encode(ack);
      }
      case net::MessageType::kFloatUpload: {
        const net::FloatUploadRequest u =
            net::decode_float_upload(env.payload);
        net::UploadAck ack;
        ack.id = store_float(u.features, {u.image_bytes, u.geo});
        return net::encode(ack);
      }
      case net::MessageType::kGlobalUpload: {
        const net::GlobalUploadRequest u =
            net::decode_global_upload(env.payload);
        store_global(u.histogram, {u.image_bytes, u.geo});
        return net::encode(net::UploadAck{});
      }
      case net::MessageType::kPlainUpload: {
        const net::PlainUploadRequest u =
            net::decode_plain_upload(env.payload);
        store_plain({u.image_bytes, u.geo});
        return net::encode(net::UploadAck{});
      }
      case net::MessageType::kChunkManifest:
      case net::MessageType::kChunkData:
      case net::MessageType::kChunkCommit:
        // Shared chunk plane (same handler as the serial server); a commit's
        // embedded legacy upload re-enters this dispatch.
        return cloud::handle_chunk_message(
            store_.get(), env, [this](const std::vector<std::uint8_t>& inner) {
              return route_request(inner);
            });
      default:
        return net::encode_error("unexpected message type");
    }
  } catch (const util::DecodeError& e) {
    return net::encode_error(e.what());
  }
}

// ---------------------------------------------------------------------------
// Query plane: fan out, merge exactly.

idx::QueryResult Cluster::query_binary(const feat::BinaryFeatures& features,
                                       double feature_bytes, int top_k) {
  idx::QueryOptions query_options;
  query_options.top_k = top_k;
  return query_binary(features, feature_bytes, query_options);
}

idx::QueryResult Cluster::query_binary(
    const feat::BinaryFeatures& features, double feature_bytes,
    const idx::QueryOptions& query_options) {
  const int top_k = query_options.top_k;
  obs::ScopedTimer timer("serve.query.binary.seconds");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++binary_queries_;
    query_feature_bytes_ += feature_bytes;
  }
  obs::ScopedSpan span("fanout.binary", "serve", obs::kLaneServer);

  // Phase 1: merge per-shard candidate rankings.  Each shard's list is the
  // global (votes desc, gid asc) order restricted to its images, so the
  // merged-and-truncated list is exactly the single-index candidate set.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> merged;  // (gid, score)
  for (const auto& backend : backends_) {
    const auto candidates =
        backend->active().binary_candidates(features,
                                            query_options.recall_target);
    merged.insert(merged.end(), candidates.begin(), candidates.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  // Same budget the single-index candidate path truncates to; per-image
  // scores are pure pair functions, so the global top-B is contained in
  // the union of per-shard top-B lists and this truncation reproduces it.
  const std::size_t budget = idx::candidate_budget(
      options_.binary_params, query_options.recall_target);
  if (merged.size() > budget) merged.resize(budget);

  // Phase 2: exact rescore on the owning shards; per-shard top-k lists
  // cover the global top-k because within a shard local order is gid order.
  std::vector<std::vector<idx::ImageId>> locals(backends_.size());
  {
    std::lock_guard<std::mutex> lock(maps_mutex_);
    for (const auto& [gid, votes] : merged) {
      const Location& loc = binary_locations_[gid];
      locals[static_cast<std::size_t>(loc.shard)].push_back(loc.local);
    }
  }
  idx::QueryResult out;
  for (std::size_t s = 0; s < backends_.size(); ++s) {
    if (locals[s].empty()) continue;
    const idx::QueryResult part =
        backends_[s]->active().rescore_binary(features, locals[s], top_k);
    out.hits.insert(out.hits.end(), part.hits.begin(), part.hits.end());
    out.candidates_checked += part.candidates_checked;
    out.ops += part.ops;
  }
  idx::detail::finalize_top_k(out, top_k);
  obs::count("serve.query.binary");
  obs::observe("serve.query.binary.candidates",
               static_cast<double>(out.candidates_checked));
  return out;
}

std::vector<idx::QueryResult> Cluster::query_binary_batch(
    const std::vector<BinaryBatchItem>& items) {
  const std::size_t nq = items.size();
  std::vector<idx::QueryResult> results(nq);
  if (nq == 0) return results;
  obs::ScopedTimer timer("serve.query.binary.seconds");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const BinaryBatchItem& item : items) {
      ++binary_queries_;
      query_feature_bytes_ += item.feature_bytes;
    }
  }
  obs::ScopedSpan span("fanout.binary.batch", "serve", obs::kLaneServer);

  // Phase 1 runs per query — candidate scores are pure (query, image)
  // functions, so each query's merged-and-truncated shortlist is exactly
  // what its solo query_binary would compute — while phase-2 work is
  // accumulated into one batched rescore per shard.
  const std::size_t n_shards = backends_.size();
  std::vector<std::vector<const feat::BinaryFeatures*>> shard_features(
      n_shards);
  std::vector<std::vector<std::vector<idx::ImageId>>> shard_locals(n_shards);
  std::vector<std::vector<int>> shard_top_k(n_shards);
  std::vector<std::vector<std::size_t>> shard_query(n_shards);
  for (std::size_t q = 0; q < nq; ++q) {
    const BinaryBatchItem& item = items[q];
    const feat::BinaryFeatures& features = *item.features;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> merged;
    for (const auto& backend : backends_) {
      const auto candidates = backend->active().binary_candidates(
          features, item.options.recall_target);
      merged.insert(merged.end(), candidates.begin(), candidates.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    const std::size_t budget = idx::candidate_budget(
        options_.binary_params, item.options.recall_target);
    if (merged.size() > budget) merged.resize(budget);

    std::vector<std::vector<idx::ImageId>> locals(n_shards);
    {
      std::lock_guard<std::mutex> lock(maps_mutex_);
      for (const auto& [gid, votes] : merged) {
        const Location& loc = binary_locations_[gid];
        locals[static_cast<std::size_t>(loc.shard)].push_back(loc.local);
      }
    }
    for (std::size_t s = 0; s < n_shards; ++s) {
      if (locals[s].empty()) continue;
      shard_features[s].push_back(&features);
      shard_locals[s].push_back(std::move(locals[s]));
      shard_top_k[s].push_back(item.options.top_k);
      shard_query[s].push_back(q);
    }
  }

  // Phase 2: one batched rescore per shard; scatter the per-query parts
  // back and finalize exactly like the single-query merge.
  for (std::size_t s = 0; s < n_shards; ++s) {
    if (shard_features[s].empty()) continue;
    const std::vector<idx::QueryResult> parts =
        backends_[s]->active().rescore_binary_batch(
            shard_features[s], shard_locals[s], shard_top_k[s]);
    for (std::size_t e = 0; e < parts.size(); ++e) {
      idx::QueryResult& out = results[shard_query[s][e]];
      out.hits.insert(out.hits.end(), parts[e].hits.begin(),
                      parts[e].hits.end());
      out.candidates_checked += parts[e].candidates_checked;
      out.ops += parts[e].ops;
    }
  }
  for (std::size_t q = 0; q < nq; ++q) {
    idx::detail::finalize_top_k(results[q], items[q].options.top_k);
    obs::count("serve.query.binary");
    obs::observe("serve.query.binary.candidates",
                 static_cast<double>(results[q].candidates_checked));
  }
  return results;
}

idx::QueryResult Cluster::query_float(const feat::FloatFeatures& features,
                                      double feature_bytes, int top_k) {
  obs::ScopedTimer timer("serve.query.float.seconds");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++float_queries_;
    query_feature_bytes_ += feature_bytes;
  }
  obs::ScopedSpan span("fanout.float", "serve", obs::kLaneServer);

  std::vector<std::pair<double, std::uint32_t>> merged;  // (distance, gid)
  for (const auto& backend : backends_) {
    const auto candidates = backend->active().float_candidates(features);
    merged.insert(merged.end(), candidates.begin(), candidates.end());
  }
  std::sort(merged.begin(), merged.end());  // (distance asc, gid asc)
  const auto budget = static_cast<std::size_t>(
      std::max(0, options_.float_params.max_candidates));
  if (merged.size() > budget) merged.resize(budget);

  std::vector<std::vector<idx::ImageId>> locals(backends_.size());
  {
    std::lock_guard<std::mutex> lock(maps_mutex_);
    for (const auto& [distance, gid] : merged) {
      const Location& loc = float_locations_[gid];
      locals[static_cast<std::size_t>(loc.shard)].push_back(loc.local);
    }
  }
  idx::QueryResult out;
  for (std::size_t s = 0; s < backends_.size(); ++s) {
    if (locals[s].empty()) continue;
    const idx::QueryResult part =
        backends_[s]->active().rescore_float(features, locals[s], top_k);
    out.hits.insert(out.hits.end(), part.hits.begin(), part.hits.end());
    out.candidates_checked += part.candidates_checked;
    out.ops += part.ops;
  }
  idx::detail::finalize_top_k(out, top_k);
  obs::count("serve.query.float");
  obs::observe("serve.query.float.candidates",
               static_cast<double>(out.candidates_checked));
  return out;
}

double Cluster::query_global(const feat::ColorHistogram& histogram,
                             const idx::GeoTag& geo, double feature_bytes,
                             double geo_radius_deg) {
  obs::ScopedTimer timer("serve.query.global.seconds");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    query_feature_bytes_ += feature_bytes;
  }
  double best = 0.0;
  for (const auto& backend : backends_) {
    best = std::max(best,
                    backend->active().peek_global(histogram, geo,
                                                  geo_radius_deg));
  }
  obs::count("serve.query.global");
  return best;
}

// ---------------------------------------------------------------------------
// Mutation plane (single-writer).

idx::ImageId Cluster::apply_mutation(WalOp op, const idx::GeoTag& geo,
                                     WalRecord record,
                                     std::vector<Location>* locations,
                                     std::vector<idx::ImageId>* next_local,
                                     std::uint32_t gid) {
  record.op = op;
  record.global_id = gid;
  const std::size_t s = route(geo, gid);
  idx::ImageId predicted = idx::kInvalidImageId;
  if (locations) {
    predicted = (*next_local)[s]++;
    std::lock_guard<std::mutex> lock(maps_mutex_);
    locations->push_back({static_cast<int>(s), predicted});
  }
  const idx::ImageId local = backends_[s]->apply(std::move(record));
  if (locations && local != predicted) {
    throw std::logic_error("cluster: shard local id drifted from prediction");
  }
  return local;
}

idx::ImageId Cluster::store_binary(const feat::BinaryFeatures& features,
                                   const cloud::StoreInfo& info) {
  obs::ScopedTimer timer("serve.store.seconds");
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  const std::uint32_t gid = next_binary_gid_++;
  WalRecord record;
  record.info = info;
  record.payload = idx::serialize_binary(features);
  apply_mutation(WalOp::kStoreBinary, info.geo, std::move(record),
                 &binary_locations_, &next_binary_local_, gid);
  obs::count("serve.store.images");
  return gid;
}

idx::ImageId Cluster::store_float(const feat::FloatFeatures& features,
                                  const cloud::StoreInfo& info) {
  obs::ScopedTimer timer("serve.store.seconds");
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  const std::uint32_t gid = next_float_gid_++;
  WalRecord record;
  record.info = info;
  record.payload = idx::serialize_float(features);
  apply_mutation(WalOp::kStoreFloat, info.geo, std::move(record),
                 &float_locations_, &next_float_local_, gid);
  obs::count("serve.store.images");
  return gid;
}

void Cluster::store_global(const feat::ColorHistogram& histogram,
                           const cloud::StoreInfo& info) {
  obs::ScopedTimer timer("serve.store.seconds");
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  WalRecord record;
  record.info = info;
  record.payload = encode_histogram(histogram);
  apply_mutation(WalOp::kStoreGlobal, info.geo, std::move(record), nullptr,
                 nullptr, next_unrouted_++);
  obs::count("serve.store.images");
}

void Cluster::store_plain(const cloud::StoreInfo& info) {
  obs::ScopedTimer timer("serve.store.seconds");
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  WalRecord record;
  record.info = info;
  apply_mutation(WalOp::kStorePlain, info.geo, std::move(record), nullptr,
                 nullptr, next_unrouted_++);
  obs::count("serve.store.images");
}

void Cluster::seed_binary(const feat::BinaryFeatures& features,
                          const idx::GeoTag& geo, double thumbnail_bytes) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  const std::uint32_t gid = next_binary_gid_++;
  WalRecord record;
  record.info.geo = geo;
  record.info.thumbnail_bytes = thumbnail_bytes;
  record.payload = idx::serialize_binary(features);
  apply_mutation(WalOp::kSeedBinary, geo, std::move(record),
                 &binary_locations_, &next_binary_local_, gid);
}

void Cluster::seed_float(const feat::FloatFeatures& features,
                         const idx::GeoTag& geo) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  const std::uint32_t gid = next_float_gid_++;
  WalRecord record;
  record.info.geo = geo;
  record.payload = idx::serialize_float(features);
  apply_mutation(WalOp::kSeedFloat, geo, std::move(record), &float_locations_,
                 &next_float_local_, gid);
}

void Cluster::seed_global(const feat::ColorHistogram& histogram,
                          const idx::GeoTag& geo) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  WalRecord record;
  record.info.geo = geo;
  record.payload = encode_histogram(histogram);
  apply_mutation(WalOp::kSeedGlobal, geo, std::move(record), nullptr, nullptr,
                 next_unrouted_++);
}

// ---------------------------------------------------------------------------
// Lookup, stats, durability.

double Cluster::thumbnail_bytes_of(idx::ImageId gid) const {
  Location loc;
  {
    std::lock_guard<std::mutex> lock(maps_mutex_);
    if (gid >= binary_locations_.size()) return 0.0;
    loc = binary_locations_[gid];
  }
  if (loc.shard < 0) return 0.0;
  return backends_[static_cast<std::size_t>(loc.shard)]
      ->active()
      .thumbnail_bytes_of_local(loc.local);
}

cloud::ServerStats Cluster::stats() const {
  cloud::ServerStats out;
  std::unordered_set<std::uint64_t> keys;
  for (const auto& backend : backends_) {
    const Shard& shard = backend->active();
    const cloud::ServerStats st = shard.stats();
    out.images_stored += st.images_stored;
    out.image_bytes_received += st.image_bytes_received;
    out.feature_bytes_received += st.feature_bytes_received;
    const std::vector<std::uint64_t> shard_keys = shard.location_keys();
    keys.insert(shard_keys.begin(), shard_keys.end());
  }
  out.unique_locations = keys.size();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  out.binary_queries = binary_queries_;
  out.float_queries = float_queries_;
  out.feature_bytes_received += query_feature_bytes_;
  return out;
}

void Cluster::checkpoint() {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  for (const auto& backend : backends_) backend->checkpoint();
}

bool Cluster::kill_primary(int shard) {
  if (shard < 0 || shard >= shard_count()) return false;
  // The mutation lock puts the kill *between* applies: no record is ever
  // half-shipped when the promotion runs, which is what makes the promoted
  // standby's state exactly the killed primary's.
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  return backends_[static_cast<std::size_t>(shard)]->kill_active();
}

BackendResilience Cluster::resilience() const {
  BackendResilience out;
  for (const auto& backend : backends_) {
    const BackendResilience r = backend->resilience();
    out.failovers += r.failovers;
    out.ship_records += r.ship_records;
    out.ship_bytes += r.ship_bytes;
    out.ship_lag_max = std::max(out.ship_lag_max, r.ship_lag_max);
    out.catch_ups += r.catch_ups;
    out.live_standbys += r.live_standbys;
  }
  return out;
}

idx::FeatureIndex Cluster::merged_binary_index() const {
  std::vector<Location> locations;
  {
    std::lock_guard<std::mutex> lock(maps_mutex_);
    locations = binary_locations_;
  }
  idx::FeatureIndex out(options_.binary_params);
  for (const Location& loc : locations) {
    if (loc.shard < 0) continue;
    auto [features, geo] = backends_[static_cast<std::size_t>(loc.shard)]
                               ->active()
                               .binary_entry(loc.local);
    out.insert(std::move(features), geo);
  }
  return out;
}

void Cluster::preload_binary(const idx::FeatureIndex& index) {
  for (std::size_t i = 0; i < index.image_count(); ++i) {
    const auto id = static_cast<idx::ImageId>(i);
    seed_binary(index.features_of(id), index.geo_of(id));
  }
}

}  // namespace bees::serve
