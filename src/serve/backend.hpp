// The shard-backend seam: how the cluster frontend reaches the state
// machine behind each shard slot without knowing whether that slot is a
// bare durable Shard or a replication group (src/replica) shipping its WAL
// to standby followers.
//
// The contract every backend must honour is the one the cluster's
// determinism proof leans on:
//
//   - active() always returns a Shard whose state is exactly the fold of
//     the apply() calls issued so far, in order.  Queries read only the
//     active instance, so a backend may maintain any number of standbys at
//     any lag without affecting replies.
//   - kill_active() may only change which instance is active, never what
//     the active instance's state is.  A backend that promotes a standby
//     must first bring it to apply-parity with the instance being killed —
//     after a successful kill, every subsequent query must be answered
//     byte-identically to a backend that was never killed.
//
// The factory is a dependency inversion: serve never links against the
// replication layer; callers that want replicated shard slots (the fleet
// simulator, tools, tests) install replica::make_replicated_factory into
// ClusterOptions::backend_factory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "serve/shard.hpp"

namespace bees::serve {

/// Replication/failover counters one backend accumulated; all zeros for a
/// single-instance backend.  Aggregated across shards by
/// Cluster::resilience() and surfaced in the fleet report's `resilience`
/// section — every field is a deterministic function of the applied
/// mutation sequence and the kill schedule, never of wall-clock.
struct BackendResilience {
  std::uint64_t failovers = 0;     ///< Successful promotions.
  std::uint64_t ship_records = 0;  ///< WAL frames shipped (x live followers).
  std::uint64_t ship_bytes = 0;    ///< Framed ship bytes (x live followers).
  std::uint64_t ship_lag_max = 0;  ///< Max frames queued to one follower.
  std::uint64_t catch_ups = 0;     ///< Snapshot-install catch-ups.
  std::uint64_t live_standbys = 0; ///< Followers currently promotable.
};

/// One shard slot of the cluster: the active Shard all queries read, plus
/// whatever standby machinery the implementation keeps behind it.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// The instance queries read.  Stable between apply()/kill_active()
  /// calls; after a kill it names the promoted standby.
  virtual Shard& active() = 0;
  virtual const Shard& active() const = 0;

  /// Logs and applies one mutation to the active instance (and, for a
  /// replicated backend, ships it).  Same contract as Shard::apply —
  /// callers serialize mutations (the cluster's mutation lock).
  virtual idx::ImageId apply(WalRecord record) = 0;

  /// Checkpoints every durable instance this backend owns.
  virtual void checkpoint() = 0;

  /// Kills the active instance and promotes a standby at apply-parity.
  /// Returns false (and changes nothing) when no live standby exists —
  /// single-instance backends always refuse.
  virtual bool kill_active() = 0;

  virtual BackendResilience resilience() const = 0;
};

/// Builds the backend for shard slot `shard_id` from the per-shard options
/// the cluster assembled (dir, segment store, checkpoint cadence, params).
using BackendFactory = std::function<std::unique_ptr<ShardBackend>(
    int shard_id, const ShardOptions& options)>;

/// The default backend: exactly one Shard, no standbys, kill refused.
std::unique_ptr<ShardBackend> make_single_backend(int shard_id,
                                                  const ShardOptions& options);

}  // namespace bees::serve
