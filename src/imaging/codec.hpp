// JPEG-style lossy transform codec, built from scratch (no libjpeg): 8x8
// DCT, libjpeg-compatible quality-scaled quantization, zigzag scan, and
// Exp-Golomb entropy coding, with 4:2:0 chroma subsampling for RGB input.
//
// This is the "quality compression" substrate of the paper's AIU stage: the
// compression proportion knob maps onto the codec quality factor, and the
// encoder output is the actual byte stream whose size the bandwidth
// experiments (Fig. 5a) measure.
#pragma once

#include <cstdint>
#include <vector>

#include "imaging/image.hpp"

namespace bees::img {

/// Encodes `src` (1- or 3-channel) at JPEG-style quality in [1, 100].
/// Higher quality => larger output and higher fidelity.
std::vector<std::uint8_t> encode_jpeg_like(const Image& src, int quality);

/// Decodes a stream produced by encode_jpeg_like.  Throws
/// util::DecodeError on malformed input.
Image decode_jpeg_like(const std::vector<std::uint8_t>& bytes);

/// Maps the paper's quality-compression proportion p in [0, 1) onto the
/// codec quality factor: proportion 0 -> quality 100 (near lossless),
/// proportion 0.85 (the paper's fixed choice) -> quality 15.
int quality_from_proportion(double proportion) noexcept;

/// Convenience used by AIU: encodes at the given quality proportion and
/// returns only the compressed byte count (the bandwidth cost).
std::size_t compressed_size(const Image& src, double quality_proportion);

/// Forward 8x8 DCT-II on a block given in row-major `in`, result in `out`
/// (both length 64).  Exposed for testing against the orthonormality
/// property.
void forward_dct_8x8(const float* in, float* out) noexcept;
/// Inverse of forward_dct_8x8.
void inverse_dct_8x8(const float* in, float* out) noexcept;

}  // namespace bees::img
