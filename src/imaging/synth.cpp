#include "imaging/synth.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/transform.hpp"

namespace bees::img {

namespace {

/// Hash-based lattice gradient for value noise: deterministic pseudo-random
/// value in [0, 1) at integer lattice point (x, y) for a given seed.
double lattice_value(int x, int y, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) *
       0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) *
       0xc2b2ae3d27d4eb4fULL;
  h = util::splitmix64(h);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smoothstep(double t) noexcept { return t * t * (3.0 - 2.0 * t); }

double noise_at(double x, double y, std::uint64_t seed) noexcept {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const double tx = smoothstep(x - x0);
  const double ty = smoothstep(y - y0);
  const double v00 = lattice_value(x0, y0, seed);
  const double v10 = lattice_value(x0 + 1, y0, seed);
  const double v01 = lattice_value(x0, y0 + 1, seed);
  const double v11 = lattice_value(x0 + 1, y0 + 1, seed);
  const double a = v00 * (1 - tx) + v10 * tx;
  const double b = v01 * (1 - tx) + v11 * tx;
  return a * (1 - ty) + b * ty;
}

struct Color {
  std::uint8_t r, g, b;
};

void draw_filled_rect(Image& im, int x0, int y0, int x1, int y1, Color c) {
  x0 = std::clamp(x0, 0, im.width() - 1);
  x1 = std::clamp(x1, 0, im.width() - 1);
  y0 = std::clamp(y0, 0, im.height() - 1);
  y1 = std::clamp(y1, 0, im.height() - 1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      im.set(x, y, c.r, 0);
      im.set(x, y, c.g, 1);
      im.set(x, y, c.b, 2);
    }
  }
}

void draw_filled_circle(Image& im, int cx, int cy, int radius, Color c) {
  const int x0 = std::max(0, cx - radius);
  const int x1 = std::min(im.width() - 1, cx + radius);
  const int y0 = std::max(0, cy - radius);
  const int y1 = std::min(im.height() - 1, cy + radius);
  const int r2 = radius * radius;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const int dx = x - cx, dy = y - cy;
      if (dx * dx + dy * dy <= r2) {
        im.set(x, y, c.r, 0);
        im.set(x, y, c.g, 1);
        im.set(x, y, c.b, 2);
      }
    }
  }
}

void draw_triangle(Image& im, int cx, int cy, int size, double angle,
                   Color c) {
  // Three vertices of an equilateral triangle rotated by `angle`.
  double vx[3], vy[3];
  for (int i = 0; i < 3; ++i) {
    const double a = angle + 2.0 * M_PI * i / 3.0;
    vx[i] = cx + size * std::cos(a);
    vy[i] = cy + size * std::sin(a);
  }
  const int x0 = std::clamp(
      static_cast<int>(std::floor(std::min({vx[0], vx[1], vx[2]}))), 0,
      im.width() - 1);
  const int x1 = std::clamp(
      static_cast<int>(std::ceil(std::max({vx[0], vx[1], vx[2]}))), 0,
      im.width() - 1);
  const int y0 = std::clamp(
      static_cast<int>(std::floor(std::min({vy[0], vy[1], vy[2]}))), 0,
      im.height() - 1);
  const int y1 = std::clamp(
      static_cast<int>(std::ceil(std::max({vy[0], vy[1], vy[2]}))), 0,
      im.height() - 1);
  auto edge = [](double ax, double ay, double bx, double by, double px,
                 double py) {
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
  };
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double e0 = edge(vx[0], vy[0], vx[1], vy[1], x, y);
      const double e1 = edge(vx[1], vy[1], vx[2], vy[2], x, y);
      const double e2 = edge(vx[2], vy[2], vx[0], vy[0], x, y);
      const bool inside = (e0 >= 0 && e1 >= 0 && e2 >= 0) ||
                          (e0 <= 0 && e1 <= 0 && e2 <= 0);
      if (inside) {
        im.set(x, y, c.r, 0);
        im.set(x, y, c.g, 1);
        im.set(x, y, c.b, 2);
      }
    }
  }
}

}  // namespace

Image value_noise(int width, int height, int octaves, std::uint64_t seed) {
  Image out(width, height, 1);
  const int oct = std::max(1, octaves);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double amp = 1.0, freq = 4.0 / std::max(width, height), total = 0.0,
             norm = 0.0;
      for (int o = 0; o < oct; ++o) {
        total += amp * noise_at(x * freq, y * freq,
                                seed + static_cast<std::uint64_t>(o) * 977);
        norm += amp;
        amp *= 0.55;
        freq *= 2.0;
      }
      out.set(x, y,
              static_cast<std::uint8_t>(
                  std::clamp(total / norm * 255.0, 0.0, 255.0)));
    }
  }
  return out;
}

Image render_scene(const SceneSpec& spec, int width, int height) {
  // Background: tinted fBm texture so the image has natural low-frequency
  // content (matters for codec rate behaviour).
  util::Rng rng(spec.seed);
  const Image tex = value_noise(width, height, spec.noise_octaves, spec.seed);
  const double tint_r = rng.uniform(0.6, 1.0);
  const double tint_g = rng.uniform(0.6, 1.0);
  const double tint_b = rng.uniform(0.6, 1.0);
  Image im(width, height, 3);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double t = tex.at(x, y);
      im.set(x, y, static_cast<std::uint8_t>(t * tint_r), 0);
      im.set(x, y, static_cast<std::uint8_t>(t * tint_g), 1);
      im.set(x, y, static_cast<std::uint8_t>(t * tint_b), 2);
    }
  }
  // Foreground shapes: high-contrast rectangles / circles / triangles whose
  // corners and edges give the detectors stable keypoints.
  for (int s = 0; s < spec.shape_count; ++s) {
    const Color c{static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                  static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                  static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
    const int cx = static_cast<int>(rng.uniform_int(0, width - 1));
    const int cy = static_cast<int>(rng.uniform_int(0, height - 1));
    const int size = static_cast<int>(
        rng.uniform_int(std::max(4, width / 24), std::max(5, width / 7)));
    switch (rng.uniform_int(0, 2)) {
      case 0:
        draw_filled_rect(im, cx - size, cy - size / 2, cx + size,
                         cy + size / 2, c);
        break;
      case 1:
        draw_filled_circle(im, cx, cy, size / 2 + 2, c);
        break;
      default:
        draw_triangle(im, cx, cy, size, rng.uniform(0, 2 * M_PI), c);
        break;
    }
  }
  // Fine detail: small marks that survive re-photographing but not
  // downscaling (see SceneSpec::detail_count).
  for (int d = 0; d < spec.detail_count; ++d) {
    const bool bright = rng.bernoulli(0.5);
    const Color c{static_cast<std::uint8_t>(bright ? rng.uniform_int(200, 255)
                                                   : rng.uniform_int(0, 55)),
                  static_cast<std::uint8_t>(bright ? rng.uniform_int(200, 255)
                                                   : rng.uniform_int(0, 55)),
                  static_cast<std::uint8_t>(bright ? rng.uniform_int(200, 255)
                                                   : rng.uniform_int(0, 55))};
    const int cx = static_cast<int>(rng.uniform_int(0, width - 1));
    const int cy = static_cast<int>(rng.uniform_int(0, height - 1));
    const int size = static_cast<int>(rng.uniform_int(2, 4));
    if (rng.bernoulli(0.5)) {
      draw_filled_rect(im, cx - size, cy - size, cx + size, cy + size, c);
    } else {
      draw_filled_circle(im, cx, cy, size, c);
    }
  }
  return im;
}

Image render_view(const SceneSpec& spec, int width, int height,
                  const ViewPerturbation& pert, util::Rng& rng) {
  Image base = render_scene(spec, width, height);
  const double angle = rng.uniform(-pert.max_rotation_rad,
                                   pert.max_rotation_rad);
  const double scale = 1.0 + rng.uniform(-pert.max_scale_delta,
                                         pert.max_scale_delta);
  const double tx = rng.uniform(-pert.max_translate_frac,
                                pert.max_translate_frac) * width;
  const double ty = rng.uniform(-pert.max_translate_frac,
                                pert.max_translate_frac) * height;
  const Affine m = Affine::rotation_about(width / 2.0, height / 2.0, angle,
                                          scale, tx, ty);
  Image view = warp_affine(base, m);
  const double gain =
      1.0 + rng.uniform(-pert.max_gain_delta, pert.max_gain_delta);
  const double bias = rng.uniform(-pert.max_bias, pert.max_bias);
  view = adjust_brightness_contrast(view, gain, bias);
  if (pert.noise_stddev > 0) {
    view = add_gaussian_noise(view, pert.noise_stddev, rng);
  }
  return view;
}

}  // namespace bees::img
