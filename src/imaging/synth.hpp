// Deterministic synthetic scene rendering.  Stands in for the paper's photo
// datasets (see DESIGN.md §2): each scene is a textured background with
// random high-contrast shapes, giving the corner structure that FAST/ORB
// detectors key on.  Rendering is a pure function of (SceneSpec, size), so
// two renders of the same spec are identical and "similar images" are
// produced by perturbing the view, exactly the group structure of the
// Kentucky imageset.
#pragma once

#include <cstdint>

#include "imaging/image.hpp"
#include "util/rng.hpp"

namespace bees::img {

/// Multi-octave value noise ("fBm") texture in [0, 255]; deterministic in
/// (width, height, octaves, seed).  Used as the natural-image-like background
/// that keeps the JPEG-style codec's rate behaviour realistic.
Image value_noise(int width, int height, int octaves, std::uint64_t seed);

/// Everything needed to re-render one scene.
struct SceneSpec {
  std::uint64_t seed = 1;  ///< Determines texture, shapes, and palette.
  int shape_count = 14;    ///< Number of foreground shapes.
  int noise_octaves = 4;   ///< Background texture roughness.
  /// Small high-contrast marks (2-6 px).  They are stable scene features at
  /// full resolution but vanish under bitmap compression — the fine detail
  /// whose loss makes compressed-query precision degrade (paper Fig. 3a).
  int detail_count = 40;
};

/// Renders the scene at the requested resolution as an RGB image.
Image render_scene(const SceneSpec& spec, int width, int height);

/// A perturbed "photo" of a scene: small rotation/scale/translation plus
/// illumination change and sensor noise.  This models a second shot of the
/// same subject (one member of a Kentucky group).
struct ViewPerturbation {
  double max_rotation_rad = 0.06;
  double max_scale_delta = 0.05;
  double max_translate_frac = 0.03;  ///< Fraction of the image dimension.
  double max_gain_delta = 0.12;
  double max_bias = 10.0;
  double noise_stddev = 2.5;
};

/// Renders `spec` and then applies a random view perturbation drawn from
/// `rng`.  Separate calls give distinct but similar images of one scene.
Image render_view(const SceneSpec& spec, int width, int height,
                  const ViewPerturbation& pert, util::Rng& rng);

}  // namespace bees::img
