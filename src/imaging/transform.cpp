#include "imaging/transform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bees::img {

namespace {
std::uint8_t clamp_u8(double v) noexcept {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

/// Bilinear sample with replicate borders at real-valued (fx, fy).
double sample_bilinear(const Image& src, double fx, double fy,
                       int c) noexcept {
  const int x0 = static_cast<int>(std::floor(fx));
  const int y0 = static_cast<int>(std::floor(fy));
  const double ax = fx - x0;
  const double ay = fy - y0;
  const double p00 = src.at_clamped(x0, y0, c);
  const double p10 = src.at_clamped(x0 + 1, y0, c);
  const double p01 = src.at_clamped(x0, y0 + 1, c);
  const double p11 = src.at_clamped(x0 + 1, y0 + 1, c);
  return p00 * (1 - ax) * (1 - ay) + p10 * ax * (1 - ay) +
         p01 * (1 - ax) * ay + p11 * ax * ay;
}
}  // namespace

Image to_gray(const Image& src) {
  if (src.is_gray()) return src;
  Image out(src.width(), src.height(), 1);
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      const double r = src.at(x, y, 0);
      const double g = src.at(x, y, 1);
      const double b = src.at(x, y, 2);
      out.set(x, y, clamp_u8(0.299 * r + 0.587 * g + 0.114 * b));
    }
  }
  return out;
}

Image resize(const Image& src, int new_width, int new_height) {
  if (new_width <= 0 || new_height <= 0) {
    throw std::invalid_argument("resize: dimensions must be positive");
  }
  Image out(new_width, new_height, src.channels());
  const double sx = static_cast<double>(src.width()) / new_width;
  const double sy = static_cast<double>(src.height()) / new_height;
  for (int y = 0; y < new_height; ++y) {
    // Map pixel centers to pixel centers.
    const double fy = (y + 0.5) * sy - 0.5;
    for (int x = 0; x < new_width; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      for (int c = 0; c < src.channels(); ++c) {
        out.set(x, y, clamp_u8(sample_bilinear(src, fx, fy, c)), c);
      }
    }
  }
  return out;
}

Image bitmap_compress(const Image& src, double proportion) {
  proportion = std::clamp(proportion, 0.0, 0.99);
  if (proportion == 0.0) return src;
  const int w = std::max(8, static_cast<int>(
                                std::lround(src.width() * (1 - proportion))));
  const int h = std::max(8, static_cast<int>(
                                std::lround(src.height() * (1 - proportion))));
  return resize(src, w, h);
}

Image gaussian_blur(const Image& src, double sigma) {
  if (sigma <= 0) throw std::invalid_argument("gaussian_blur: sigma <= 0");
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double norm = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (i * i) / (sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = v;
    norm += v;
  }
  for (auto& k : kernel) k /= norm;

  // Horizontal pass into a float buffer, then vertical pass.
  const int w = src.width(), h = src.height(), ch = src.channels();
  std::vector<double> tmp(static_cast<std::size_t>(w) * h * ch);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < ch; ++c) {
        double acc = 0.0;
        for (int i = -radius; i <= radius; ++i) {
          acc += kernel[static_cast<std::size_t>(i + radius)] *
                 src.at_clamped(x + i, y, c);
        }
        tmp[(static_cast<std::size_t>(y) * w + x) * ch + c] = acc;
      }
    }
  }
  Image out(w, h, ch);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < ch; ++c) {
        double acc = 0.0;
        for (int i = -radius; i <= radius; ++i) {
          const int yy = std::clamp(y + i, 0, h - 1);
          acc += kernel[static_cast<std::size_t>(i + radius)] *
                 tmp[(static_cast<std::size_t>(yy) * w + x) * ch + c];
        }
        out.set(x, y, clamp_u8(acc), c);
      }
    }
  }
  return out;
}

Affine Affine::rotation_about(double cx, double cy, double angle_rad,
                              double scale, double tx, double ty) {
  // Destination->source: rotate by -angle and scale by 1/scale about the
  // center, then undo the translation.
  const double cosr = std::cos(-angle_rad) / scale;
  const double sinr = std::sin(-angle_rad) / scale;
  Affine m;
  m.a = cosr;
  m.b = -sinr;
  m.d = sinr;
  m.e = cosr;
  // Solve so that (cx + tx, cy + ty) maps back to (cx, cy).
  m.c = cx - m.a * (cx + tx) - m.b * (cy + ty);
  m.f = cy - m.d * (cx + tx) - m.e * (cy + ty);
  return m;
}

Image warp_affine(const Image& src, const Affine& m) {
  Image out(src.width(), src.height(), src.channels());
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      const double fx = m.a * x + m.b * y + m.c;
      const double fy = m.d * x + m.e * y + m.f;
      for (int c = 0; c < src.channels(); ++c) {
        out.set(x, y, clamp_u8(sample_bilinear(src, fx, fy, c)), c);
      }
    }
  }
  return out;
}

Image adjust_brightness_contrast(const Image& src, double gain, double bias) {
  Image out(src.width(), src.height(), src.channels());
  for (std::size_t i = 0; i < src.data().size(); ++i) {
    out.data()[i] = clamp_u8(gain * src.data()[i] + bias);
  }
  return out;
}

Image add_gaussian_noise(const Image& src, double stddev, util::Rng& rng) {
  Image out(src.width(), src.height(), src.channels());
  for (std::size_t i = 0; i < src.data().size(); ++i) {
    out.data()[i] = clamp_u8(src.data()[i] + rng.normal(0.0, stddev));
  }
  return out;
}

Image crop(const Image& src, int x, int y, int w, int h) {
  if (x < 0 || y < 0 || w <= 0 || h <= 0 || x + w > src.width() ||
      y + h > src.height()) {
    throw std::invalid_argument("crop: rectangle out of bounds");
  }
  Image out(w, h, src.channels());
  for (int yy = 0; yy < h; ++yy) {
    for (int xx = 0; xx < w; ++xx) {
      for (int c = 0; c < src.channels(); ++c) {
        out.set(xx, yy, src.at(x + xx, y + yy, c), c);
      }
    }
  }
  return out;
}

}  // namespace bees::img
