// Geometric and photometric transforms on Image.  These implement both the
// system's own operations (bitmap compression = downscale before feature
// extraction, resolution compression before upload) and the workload
// generator's view perturbations (warp, illumination, noise) that create the
// "4 views of one scene" group structure of the Kentucky imageset.
#pragma once

#include "imaging/image.hpp"
#include "util/rng.hpp"

namespace bees::img {

/// Converts an RGB image to grayscale using ITU-R BT.601 luma weights.
/// A grayscale input is copied through unchanged.
Image to_gray(const Image& src);

/// Bilinear resize to new_width x new_height (both must be positive).
Image resize(const Image& src, int new_width, int new_height);

/// Applies the paper's "bitmap compression": shrinks the length and width by
/// `proportion` in [0, 1), i.e. new_dim = dim * (1 - proportion).  Proportion
/// 0 returns a copy.  Dimensions are floored at 8 pixels.
Image bitmap_compress(const Image& src, double proportion);

/// Separable Gaussian blur with the given sigma (> 0); kernel radius is
/// ceil(3*sigma).
Image gaussian_blur(const Image& src, double sigma);

/// 2x3 affine matrix mapping destination pixel (x, y, 1) to source
/// coordinates.  Row-major: [a b c; d e f].
struct Affine {
  double a = 1, b = 0, c = 0;
  double d = 0, e = 1, f = 0;

  /// Composes a transform: rotate by `angle_rad` about (cx, cy), scale by
  /// `scale`, then translate by (tx, ty).  Returns the inverse map suitable
  /// for warp()'s destination->source convention.
  static Affine rotation_about(double cx, double cy, double angle_rad,
                               double scale = 1.0, double tx = 0.0,
                               double ty = 0.0);
};

/// Warps `src` through the destination->source map `m` with bilinear
/// sampling and replicate borders; output has the same shape as the input.
Image warp_affine(const Image& src, const Affine& m);

/// Photometric adjustment: out = clamp(gain * in + bias).
Image adjust_brightness_contrast(const Image& src, double gain, double bias);

/// Adds i.i.d. Gaussian sensor noise with the given standard deviation
/// (in 8-bit levels) using `rng`.
Image add_gaussian_noise(const Image& src, double stddev, util::Rng& rng);

/// Crops the rectangle [x, x+w) x [y, y+h); the rectangle must lie within
/// the image.
Image crop(const Image& src, int x, int y, int w, int h);

}  // namespace bees::img
