// Image quality metrics.  SSIM is the assessment the paper uses to justify
// the fixed 0.85 quality-compression proportion (Fig. 5a); MSE/PSNR round
// out the codec test suite.
#pragma once

#include "imaging/image.hpp"

namespace bees::img {

/// Mean squared error over all channels; images must have the same shape.
double mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB (infinity for identical images is
/// reported as 99.0).
double psnr(const Image& a, const Image& b);

/// Structural SIMilarity index (Wang et al., TIP 2004) computed on the
/// luma channel with 8x8 windows, stride 4, and the standard constants
/// C1 = (0.01*255)^2, C2 = (0.03*255)^2.  Result in [-1, 1]; 1 means
/// identical.  Images must have the same shape.
double ssim(const Image& a, const Image& b);

}  // namespace bees::img
