#include "imaging/codec_lossless.hpp"

#include <array>
#include <cmath>
#include <cstdlib>

#include "util/byte_io.hpp"
#include "util/compress.hpp"

namespace bees::img {

namespace {

constexpr std::uint32_t kMagic = 0x4c504242;  // "BBPL"

enum class Filter : std::uint8_t {
  kNone = 0,
  kSub = 1,
  kUp = 2,
  kAverage = 3,
  kPaeth = 4,
};

/// PNG's Paeth predictor: the neighbour (left, up, up-left) closest to
/// left + up - upleft.
std::uint8_t paeth(std::uint8_t left, std::uint8_t up,
                   std::uint8_t upleft) noexcept {
  const int p = static_cast<int>(left) + up - upleft;
  const int pa = std::abs(p - left);
  const int pb = std::abs(p - up);
  const int pc = std::abs(p - upleft);
  if (pa <= pb && pa <= pc) return left;
  if (pb <= pc) return up;
  return upleft;
}

/// Predicted value for sample x of `row` under `filter`.  `bpp` is bytes
/// per pixel; `prev` is the previous row (nullptr for row 0).
std::uint8_t predict(Filter filter, const std::uint8_t* row,
                     const std::uint8_t* prev, std::size_t x,
                     std::size_t bpp) noexcept {
  const std::uint8_t left = x >= bpp ? row[x - bpp] : 0;
  const std::uint8_t up = prev != nullptr ? prev[x] : 0;
  const std::uint8_t upleft =
      (prev != nullptr && x >= bpp) ? prev[x - bpp] : 0;
  switch (filter) {
    case Filter::kNone:
      return 0;
    case Filter::kSub:
      return left;
    case Filter::kUp:
      return up;
    case Filter::kAverage:
      return static_cast<std::uint8_t>((left + up) / 2);
    case Filter::kPaeth:
      return paeth(left, up, upleft);
  }
  return 0;
}

}  // namespace

std::vector<std::uint8_t> encode_lossless(const Image& src) {
  util::ByteWriter header;
  header.put_u32(kMagic);
  header.put_u32(static_cast<std::uint32_t>(src.width()));
  header.put_u32(static_cast<std::uint32_t>(src.height()));
  header.put_u8(static_cast<std::uint8_t>(src.channels()));

  const auto bpp = static_cast<std::size_t>(src.channels());
  const std::size_t stride = static_cast<std::size_t>(src.width()) * bpp;
  std::vector<std::uint8_t> filtered;
  filtered.reserve(src.data().size() + static_cast<std::size_t>(src.height()));

  std::vector<std::uint8_t> residual(stride);
  for (int y = 0; y < src.height(); ++y) {
    const std::uint8_t* row = src.data().data() + y * stride;
    const std::uint8_t* prev =
        y > 0 ? src.data().data() + (y - 1) * stride : nullptr;
    // Pick the filter minimizing the sum of absolute residuals (PNG's
    // standard heuristic, treating residuals as signed).
    Filter best = Filter::kNone;
    long best_cost = -1;
    for (const Filter f : {Filter::kNone, Filter::kSub, Filter::kUp,
                           Filter::kAverage, Filter::kPaeth}) {
      long cost = 0;
      for (std::size_t x = 0; x < stride; ++x) {
        const auto r = static_cast<std::uint8_t>(
            row[x] - predict(f, row, prev, x, bpp));
        cost += std::min<int>(r, 256 - r);  // signed magnitude
      }
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best = f;
      }
    }
    filtered.push_back(static_cast<std::uint8_t>(best));
    for (std::size_t x = 0; x < stride; ++x) {
      residual[x] =
          static_cast<std::uint8_t>(row[x] - predict(best, row, prev, x, bpp));
    }
    filtered.insert(filtered.end(), residual.begin(), residual.end());
  }

  const auto compressed = util::lz_compress(filtered);
  std::vector<std::uint8_t> out = header.take();
  out.insert(out.end(), compressed.begin(), compressed.end());
  return out;
}

Image decode_lossless(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  if (r.get_u32() != kMagic) {
    throw util::DecodeError("lossless codec: bad magic");
  }
  const int w = static_cast<int>(r.get_u32());
  const int h = static_cast<int>(r.get_u32());
  const int channels = r.get_u8();
  if (w <= 0 || h <= 0 || (channels != 1 && channels != 3)) {
    throw util::DecodeError("lossless codec: bad header");
  }
  const std::size_t header_size = bytes.size() - r.remaining();
  const std::vector<std::uint8_t> payload(
      bytes.begin() + static_cast<std::ptrdiff_t>(header_size), bytes.end());
  const std::vector<std::uint8_t> filtered = util::lz_decompress(payload);

  const auto bpp = static_cast<std::size_t>(channels);
  const std::size_t stride = static_cast<std::size_t>(w) * bpp;
  if (filtered.size() != static_cast<std::size_t>(h) * (stride + 1)) {
    throw util::DecodeError("lossless codec: payload size mismatch");
  }
  Image out(w, h, channels);
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* in_row =
        filtered.data() + static_cast<std::size_t>(y) * (stride + 1);
    const auto filter_byte = in_row[0];
    if (filter_byte > 4) {
      throw util::DecodeError("lossless codec: bad filter byte");
    }
    const auto filter = static_cast<Filter>(filter_byte);
    std::uint8_t* row = out.data().data() + y * stride;
    const std::uint8_t* prev =
        y > 0 ? out.data().data() + (y - 1) * stride : nullptr;
    for (std::size_t x = 0; x < stride; ++x) {
      row[x] = static_cast<std::uint8_t>(in_row[1 + x] +
                                         predict(filter, row, prev, x, bpp));
    }
  }
  return out;
}

}  // namespace bees::img
