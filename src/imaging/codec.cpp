#include "imaging/codec.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/bitstream.hpp"
#include "util/byte_io.hpp"

namespace bees::img {

namespace {

// Standard JPEG Annex K quantization tables.
constexpr std::array<int, 64> kLumaQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<int, 64> kChromaQuant = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

// Zigzag scan order for an 8x8 block.
constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

constexpr std::uint32_t kMagic = 0x474a5042;  // "BPJG" little-endian
constexpr std::uint64_t kEobRun = 63;         // sentinel: end of block

/// Quality-scaled quantization table, libjpeg convention.
std::array<int, 64> scaled_quant(const std::array<int, 64>& base,
                                 int quality) {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, 64> q{};
  for (int i = 0; i < 64; ++i) {
    q[static_cast<std::size_t>(i)] = std::clamp(
        (base[static_cast<std::size_t>(i)] * scale + 50) / 100, 1, 255);
  }
  return q;
}

// Precomputed DCT basis: cos((2x+1) u pi / 16) with normalization.
struct DctTables {
  float c[8][8];  // c[u][x]
  DctTables() {
    for (int u = 0; u < 8; ++u) {
      const float alpha =
          u == 0 ? std::sqrt(1.0f / 8.0f) : std::sqrt(2.0f / 8.0f);
      for (int x = 0; x < 8; ++x) {
        c[u][x] = alpha * std::cos(static_cast<float>((2 * x + 1) * u) *
                                   static_cast<float>(M_PI) / 16.0f);
      }
    }
  }
};
const DctTables kDct;

/// One plane of samples with replicate padding to a multiple of 8.
struct Plane {
  int width = 0;   // true dimensions
  int height = 0;
  std::vector<float> samples;  // padded, row-major, level-shifted later

  int padded_w() const noexcept { return (width + 7) / 8 * 8; }
  int padded_h() const noexcept { return (height + 7) / 8 * 8; }

  float at(int x, int y) const noexcept {
    return samples[static_cast<std::size_t>(y) * padded_w() + x];
  }
  float& at(int x, int y) noexcept {
    return samples[static_cast<std::size_t>(y) * padded_w() + x];
  }
};

Plane make_plane(int w, int h) {
  Plane p;
  p.width = w;
  p.height = h;
  p.samples.assign(
      static_cast<std::size_t>(p.padded_w()) * p.padded_h(), 0.0f);
  return p;
}

void pad_replicate(Plane& p) {
  for (int y = 0; y < p.padded_h(); ++y) {
    const int sy = std::min(y, p.height - 1);
    for (int x = 0; x < p.padded_w(); ++x) {
      const int sx = std::min(x, p.width - 1);
      if (x >= p.width || y >= p.height) p.at(x, y) = p.at(sx, sy);
    }
  }
}

void encode_plane(const Plane& plane, const std::array<int, 64>& quant,
                  util::BitWriter& bw) {
  const int bw8 = plane.padded_w() / 8;
  const int bh8 = plane.padded_h() / 8;
  int prev_dc = 0;
  float block[64], coeff[64];
  for (int by = 0; by < bh8; ++by) {
    for (int bx = 0; bx < bw8; ++bx) {
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          block[y * 8 + x] = plane.at(bx * 8 + x, by * 8 + y) - 128.0f;
        }
      }
      forward_dct_8x8(block, coeff);
      int q[64];
      for (int i = 0; i < 64; ++i) {
        q[i] = static_cast<int>(
            std::lround(coeff[kZigzag[static_cast<std::size_t>(i)]] /
                        static_cast<float>(
                            quant[static_cast<std::size_t>(i)])));
      }
      // DC: delta from previous block.
      bw.put_se(q[0] - prev_dc);
      prev_dc = q[0];
      // AC: (zero-run, value) pairs, then an EOB sentinel.
      int run = 0;
      for (int i = 1; i < 64; ++i) {
        if (q[i] == 0) {
          ++run;
          continue;
        }
        bw.put_ue(static_cast<std::uint64_t>(run));
        bw.put_se(q[i]);
        run = 0;
      }
      bw.put_ue(kEobRun);
    }
  }
}

void decode_plane(Plane& plane, const std::array<int, 64>& quant,
                  util::BitReader& br) {
  const int bw8 = plane.padded_w() / 8;
  const int bh8 = plane.padded_h() / 8;
  int prev_dc = 0;
  float coeff[64], block[64];
  for (int by = 0; by < bh8; ++by) {
    for (int bx = 0; bx < bw8; ++bx) {
      int q[64] = {};
      prev_dc += static_cast<int>(br.get_se());
      q[0] = prev_dc;
      int i = 1;
      while (i < 64) {
        const std::uint64_t run = br.get_ue();
        if (run == kEobRun) break;
        i += static_cast<int>(run);
        if (i >= 64) throw util::DecodeError("codec: AC run overflow");
        q[i++] = static_cast<int>(br.get_se());
      }
      if (i >= 64) {
        // The block filled exactly; consume its EOB sentinel.
        if (br.get_ue() != kEobRun) {
          throw util::DecodeError("codec: missing EOB");
        }
      }
      for (int k = 0; k < 64; ++k) {
        coeff[kZigzag[static_cast<std::size_t>(k)]] =
            static_cast<float>(q[k]) *
            static_cast<float>(quant[static_cast<std::size_t>(k)]);
      }
      inverse_dct_8x8(coeff, block);
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          plane.at(bx * 8 + x, by * 8 + y) = block[y * 8 + x] + 128.0f;
        }
      }
    }
  }
}

std::uint8_t to_u8(float v) noexcept {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0f, 255.0f));
}

}  // namespace

void forward_dct_8x8(const float* in, float* out) noexcept {
  // Rows then columns; O(8^3) per pass — plenty fast for the simulator and
  // easy to verify against the orthonormal definition.
  float tmp[64];
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float acc = 0.0f;
      for (int x = 0; x < 8; ++x) acc += in[y * 8 + x] * kDct.c[u][x];
      tmp[y * 8 + u] = acc;
    }
  }
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float acc = 0.0f;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * kDct.c[v][y];
      out[v * 8 + u] = acc;
    }
  }
}

void inverse_dct_8x8(const float* in, float* out) noexcept {
  float tmp[64];
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0.0f;
      for (int u = 0; u < 8; ++u) acc += in[v * 8 + u] * kDct.c[u][x];
      tmp[v * 8 + x] = acc;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0.0f;
      for (int v = 0; v < 8; ++v) acc += tmp[v * 8 + x] * kDct.c[v][y];
      out[y * 8 + x] = acc;
    }
  }
}

std::vector<std::uint8_t> encode_jpeg_like(const Image& src, int quality) {
  quality = std::clamp(quality, 1, 100);
  util::ByteWriter header;
  header.put_u32(kMagic);
  header.put_u32(static_cast<std::uint32_t>(src.width()));
  header.put_u32(static_cast<std::uint32_t>(src.height()));
  header.put_u8(static_cast<std::uint8_t>(src.channels()));
  header.put_u8(static_cast<std::uint8_t>(quality));

  const auto lq = scaled_quant(kLumaQuant, quality);
  const auto cq = scaled_quant(kChromaQuant, quality);

  util::BitWriter bw;
  if (src.is_gray()) {
    Plane y = make_plane(src.width(), src.height());
    for (int j = 0; j < src.height(); ++j) {
      for (int i = 0; i < src.width(); ++i) y.at(i, j) = src.at(i, j);
    }
    pad_replicate(y);
    encode_plane(y, lq, bw);
  } else {
    // RGB -> YCbCr with 4:2:0 chroma subsampling (box average).
    Plane y = make_plane(src.width(), src.height());
    const int cw = (src.width() + 1) / 2;
    const int chh = (src.height() + 1) / 2;
    Plane cb = make_plane(cw, chh);
    Plane cr = make_plane(cw, chh);
    std::vector<float> cbf(static_cast<std::size_t>(src.width()) *
                           src.height());
    std::vector<float> crf(cbf.size());
    for (int j = 0; j < src.height(); ++j) {
      for (int i = 0; i < src.width(); ++i) {
        const float r = src.at(i, j, 0);
        const float g = src.at(i, j, 1);
        const float b = src.at(i, j, 2);
        y.at(i, j) = 0.299f * r + 0.587f * g + 0.114f * b;
        const std::size_t k =
            static_cast<std::size_t>(j) * src.width() + i;
        cbf[k] = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
        crf[k] = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
      }
    }
    for (int j = 0; j < chh; ++j) {
      for (int i = 0; i < cw; ++i) {
        float sb = 0, sr = 0;
        int n = 0;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const int x = i * 2 + dx, yy = j * 2 + dy;
            if (x < src.width() && yy < src.height()) {
              const std::size_t k =
                  static_cast<std::size_t>(yy) * src.width() + x;
              sb += cbf[k];
              sr += crf[k];
              ++n;
            }
          }
        }
        cb.at(i, j) = sb / static_cast<float>(n);
        cr.at(i, j) = sr / static_cast<float>(n);
      }
    }
    pad_replicate(y);
    pad_replicate(cb);
    pad_replicate(cr);
    encode_plane(y, lq, bw);
    encode_plane(cb, cq, bw);
    encode_plane(cr, cq, bw);
  }

  std::vector<std::uint8_t> out = header.take();
  const std::vector<std::uint8_t> payload = bw.finish();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Image decode_jpeg_like(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader hr(bytes);
  if (hr.get_u32() != kMagic) throw util::DecodeError("codec: bad magic");
  const int w = static_cast<int>(hr.get_u32());
  const int h = static_cast<int>(hr.get_u32());
  const int channels = hr.get_u8();
  const int quality = hr.get_u8();
  if (w <= 0 || h <= 0 || (channels != 1 && channels != 3)) {
    throw util::DecodeError("codec: bad header");
  }
  const auto lq = scaled_quant(kLumaQuant, quality);
  const auto cq = scaled_quant(kChromaQuant, quality);
  constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 1 + 1;
  util::BitReader br(bytes, kHeaderBytes);

  if (channels == 1) {
    Plane y = make_plane(w, h);
    decode_plane(y, lq, br);
    Image out(w, h, 1);
    for (int j = 0; j < h; ++j) {
      for (int i = 0; i < w; ++i) out.set(i, j, to_u8(y.at(i, j)));
    }
    return out;
  }

  Plane y = make_plane(w, h);
  const int cw = (w + 1) / 2;
  const int chh = (h + 1) / 2;
  Plane cb = make_plane(cw, chh);
  Plane cr = make_plane(cw, chh);
  decode_plane(y, lq, br);
  decode_plane(cb, cq, br);
  decode_plane(cr, cq, br);

  Image out(w, h, 3);
  for (int j = 0; j < h; ++j) {
    for (int i = 0; i < w; ++i) {
      const float yy = y.at(i, j);
      // Nearest chroma sample (4:2:0 upsampling).
      const float cbv = cb.at(std::min(i / 2, cw - 1), std::min(j / 2, chh - 1)) -
                        128.0f;
      const float crv = cr.at(std::min(i / 2, cw - 1), std::min(j / 2, chh - 1)) -
                        128.0f;
      out.set(i, j, to_u8(yy + 1.402f * crv), 0);
      out.set(i, j, to_u8(yy - 0.344136f * cbv - 0.714136f * crv), 1);
      out.set(i, j, to_u8(yy + 1.772f * cbv), 2);
    }
  }
  return out;
}

int quality_from_proportion(double proportion) noexcept {
  proportion = std::clamp(proportion, 0.0, 0.99);
  return std::clamp(static_cast<int>(std::lround((1.0 - proportion) * 100.0)),
                    1, 100);
}

std::size_t compressed_size(const Image& src, double quality_proportion) {
  return encode_jpeg_like(src, quality_from_proportion(quality_proportion))
      .size();
}

}  // namespace bees::img
