// PNG-style lossless image codec: per-row predictive filtering (None /
// Sub / Up / Average / Paeth, chosen per row by minimum absolute residual,
// exactly PNG's heuristic) over the interleaved samples, then LZ77 entropy
// coding of the residual stream.
//
// The paper's §III-C lists PNG alongside JPEG as candidate "quality
// compression" standards and picks JPEG; this codec makes that design
// point measurable — fig5_upload_compression reports the lossless
// alternative's bandwidth next to the lossy sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "imaging/image.hpp"

namespace bees::img {

/// Encodes `src` losslessly.  decode_lossless(encode_lossless(x)) == x for
/// every image.
std::vector<std::uint8_t> encode_lossless(const Image& src);

/// Inverse of encode_lossless.  Throws util::DecodeError on bad input.
Image decode_lossless(const std::vector<std::uint8_t>& bytes);

}  // namespace bees::img
