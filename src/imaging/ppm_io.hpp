// Minimal binary PPM (P6) / PGM (P5) reader and writer so the example
// programs can emit viewable artifacts without any external image library.
#pragma once

#include <string>

#include "imaging/image.hpp"

namespace bees::img {

/// Writes `im` to `path` as P6 (3-channel) or P5 (1-channel).
/// Throws std::runtime_error on I/O failure.
void write_pnm(const Image& im, const std::string& path);

/// Reads a binary P5/P6 file.  Throws std::runtime_error on I/O or format
/// errors.  Only maxval 255 is supported.
Image read_pnm(const std::string& path);

}  // namespace bees::img
