#include "imaging/ppm_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bees::img {

void write_pnm(const Image& im, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pnm: cannot open " + path);
  out << (im.is_gray() ? "P5" : "P6") << '\n'
      << im.width() << ' ' << im.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(im.data().data()),
            static_cast<std::streamsize>(im.data().size()));
  if (!out) throw std::runtime_error("write_pnm: write failed for " + path);
}

namespace {
int read_token(std::istream& in) {
  // Skips whitespace and '#' comments, then reads one integer.
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c)) {
      in.get();
    } else {
      break;
    }
  }
  int v = 0;
  if (!(in >> v)) throw std::runtime_error("read_pnm: malformed header");
  return v;
}
}  // namespace

Image read_pnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pnm: cannot open " + path);
  std::string magic;
  in >> magic;
  int channels = 0;
  if (magic == "P5") {
    channels = 1;
  } else if (magic == "P6") {
    channels = 3;
  } else {
    throw std::runtime_error("read_pnm: unsupported magic " + magic);
  }
  const int w = read_token(in);
  const int h = read_token(in);
  const int maxval = read_token(in);
  if (maxval != 255) throw std::runtime_error("read_pnm: maxval must be 255");
  in.get();  // single whitespace after header
  Image im(w, h, channels);
  in.read(reinterpret_cast<char*>(im.data().data()),
          static_cast<std::streamsize>(im.data().size()));
  if (in.gcount() != static_cast<std::streamsize>(im.data().size())) {
    throw std::runtime_error("read_pnm: truncated pixel data");
  }
  return im;
}

}  // namespace bees::img
