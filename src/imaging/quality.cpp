#include "imaging/quality.hpp"

#include <cmath>
#include <stdexcept>

#include "imaging/transform.hpp"

namespace bees::img {

double mse(const Image& a, const Image& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("mse: shape mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.data().size());
}

double psnr(const Image& a, const Image& b) {
  const double m = mse(a, b);
  if (m == 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

double ssim(const Image& a, const Image& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("ssim: shape mismatch");
  const Image ga = to_gray(a);
  const Image gb = to_gray(b);
  constexpr double kC1 = (0.01 * 255) * (0.01 * 255);
  constexpr double kC2 = (0.03 * 255) * (0.03 * 255);
  constexpr int kWin = 8;
  constexpr int kStride = 4;

  double total = 0.0;
  std::size_t windows = 0;
  for (int y = 0; y + kWin <= ga.height(); y += kStride) {
    for (int x = 0; x + kWin <= ga.width(); x += kStride) {
      double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
      for (int j = 0; j < kWin; ++j) {
        for (int i = 0; i < kWin; ++i) {
          const double va = ga.at(x + i, y + j);
          const double vb = gb.at(x + i, y + j);
          sum_a += va;
          sum_b += vb;
          sum_aa += va * va;
          sum_bb += vb * vb;
          sum_ab += va * vb;
        }
      }
      constexpr double n = kWin * kWin;
      const double mu_a = sum_a / n;
      const double mu_b = sum_b / n;
      const double var_a = sum_aa / n - mu_a * mu_a;
      const double var_b = sum_bb / n - mu_b * mu_b;
      const double cov = sum_ab / n - mu_a * mu_b;
      const double num = (2 * mu_a * mu_b + kC1) * (2 * cov + kC2);
      const double den =
          (mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2);
      total += num / den;
      ++windows;
    }
  }
  if (windows == 0) {
    // Image smaller than one window: fall back to a single global window.
    return mse(a, b) == 0.0 ? 1.0 : 0.0;
  }
  return total / static_cast<double>(windows);
}

}  // namespace bees::img
