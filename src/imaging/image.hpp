// In-memory bitmap type shared by the whole system.  8-bit interleaved
// row-major storage with 1 (grayscale) or 3 (RGB) channels — the "image
// bitmap" whose compression proportion the paper's AFE stage adjusts.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace bees::img {

/// An 8-bit image.  Invariant: data.size() == width * height * channels,
/// channels is 1 or 3.  Cheap to move, explicit to copy (copies are real
/// megabyte-scale allocations in this system).
class Image {
 public:
  Image() = default;

  /// Allocates a width x height image with the given channel count,
  /// zero-filled.  Throws std::invalid_argument for non-positive dimensions
  /// or unsupported channel counts.
  Image(int width, int height, int channels);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int channels() const noexcept { return channels_; }
  bool empty() const noexcept { return data_.empty(); }
  std::size_t pixel_count() const noexcept {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  std::size_t byte_size() const noexcept { return data_.size(); }

  bool is_gray() const noexcept { return channels_ == 1; }

  /// Unchecked pixel access (hot paths); caller guarantees bounds.
  std::uint8_t at(int x, int y, int c = 0) const noexcept {
    return data_[index(x, y, c)];
  }
  void set(int x, int y, std::uint8_t v, int c = 0) noexcept {
    data_[index(x, y, c)] = v;
  }

  /// Bounds-clamped read: coordinates outside the image are clamped to the
  /// border (replicate padding), the convention used by the filters.
  std::uint8_t at_clamped(int x, int y, int c = 0) const noexcept;

  const std::vector<std::uint8_t>& data() const noexcept { return data_; }
  std::vector<std::uint8_t>& data() noexcept { return data_; }

  void fill(std::uint8_t v) noexcept;

  bool same_shape(const Image& other) const noexcept {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_;
  }

  bool operator==(const Image& other) const noexcept = default;

 private:
  std::size_t index(int x, int y, int c) const noexcept {
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(x)) *
               static_cast<std::size_t>(channels_) +
           static_cast<std::size_t>(c);
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Summed-area table over a grayscale image, enabling O(1) box sums for the
/// FAST/Harris detectors and SSIM windows.  Values are stored as 64-bit to
/// avoid overflow for any supported image size.
class IntegralImage {
 public:
  explicit IntegralImage(const Image& gray);

  /// Sum of pixels in the inclusive rectangle [x0,x1] x [y0,y1], clamped to
  /// the image bounds.
  std::int64_t box_sum(int x0, int y0, int x1, int y1) const noexcept;

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::int64_t> sums_;  // (width+1) x (height+1)
};

}  // namespace bees::img
