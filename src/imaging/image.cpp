#include "imaging/image.hpp"

#include <algorithm>

namespace bees::img {

Image::Image(int width, int height, int channels)
    : width_(width), height_(height), channels_(channels) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Image: dimensions must be positive");
  }
  if (channels != 1 && channels != 3) {
    throw std::invalid_argument("Image: channels must be 1 or 3");
  }
  data_.assign(static_cast<std::size_t>(width) *
                   static_cast<std::size_t>(height) *
                   static_cast<std::size_t>(channels),
               0);
}

std::uint8_t Image::at_clamped(int x, int y, int c) const noexcept {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y, c);
}

void Image::fill(std::uint8_t v) noexcept {
  std::fill(data_.begin(), data_.end(), v);
}

IntegralImage::IntegralImage(const Image& gray)
    : width_(gray.width()), height_(gray.height()) {
  sums_.assign(static_cast<std::size_t>(width_ + 1) *
                   static_cast<std::size_t>(height_ + 1),
               0);
  const auto stride = static_cast<std::size_t>(width_ + 1);
  for (int y = 0; y < height_; ++y) {
    std::int64_t row = 0;
    for (int x = 0; x < width_; ++x) {
      row += gray.at(x, y, 0);
      sums_[static_cast<std::size_t>(y + 1) * stride +
            static_cast<std::size_t>(x + 1)] =
          sums_[static_cast<std::size_t>(y) * stride +
                static_cast<std::size_t>(x + 1)] +
          row;
    }
  }
}

std::int64_t IntegralImage::box_sum(int x0, int y0, int x1,
                                    int y1) const noexcept {
  x0 = std::clamp(x0, 0, width_ - 1);
  x1 = std::clamp(x1, 0, width_ - 1);
  y0 = std::clamp(y0, 0, height_ - 1);
  y1 = std::clamp(y1, 0, height_ - 1);
  if (x0 > x1 || y0 > y1) return 0;
  const auto stride = static_cast<std::size_t>(width_ + 1);
  auto s = [&](int x, int y) {
    return sums_[static_cast<std::size_t>(y) * stride +
                 static_cast<std::size_t>(x)];
  };
  return s(x1 + 1, y1 + 1) - s(x0, y1 + 1) - s(x1 + 1, y0) + s(x0, y0);
}

}  // namespace bees::img
