#include "util/compress.hpp"

#include <algorithm>
#include <array>

#include "util/bitstream.hpp"
#include "util/byte_io.hpp"

namespace bees::util {

namespace {

constexpr std::size_t kWindow = 64 * 1024;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1024;
constexpr std::size_t kHashSize = 1 << 15;
constexpr std::uint32_t kMagic = 0x5a4c4245;  // "EBLZ"

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  v = static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
      (static_cast<std::uint32_t>(p[2]) << 16) |
      (static_cast<std::uint32_t>(p[3]) << 24);
  return (v * 2654435761u) >> (32 - 15);
}

}  // namespace

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> data) {
  ByteWriter header;
  header.put_u32(kMagic);
  header.put_varint(data.size());

  BitWriter bw;
  // Hash chains: head per bucket, previous-occurrence link per position.
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(data.size(), -1);

  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= data.size()) {
      const std::uint32_t h = hash4(data.data() + pos);
      std::int64_t candidate = head[h];
      int probes = 16;  // bounded search keeps compression O(n)
      while (candidate >= 0 && probes-- > 0 &&
             pos - static_cast<std::size_t>(candidate) <= kWindow) {
        const auto cand = static_cast<std::size_t>(candidate);
        std::size_t len = 0;
        const std::size_t max_len =
            std::min(kMaxMatch, data.size() - pos);
        while (len < max_len && data[cand + len] == data[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cand;
        }
        candidate = prev[cand];
      }
    }

    if (best_len >= kMinMatch) {
      // Match token: flag 1, length offset, distance.
      bw.put_bit(true);
      bw.put_ue(best_len - kMinMatch);
      bw.put_ue(best_dist - 1);
      // Insert the covered positions into the chains.
      const std::size_t end = std::min(pos + best_len, data.size() - 3);
      for (std::size_t i = pos; i < end; ++i) {
        const std::uint32_t h = hash4(data.data() + i);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      pos += best_len;
    } else {
      // Literal token: flag 0, raw byte.
      bw.put_bit(false);
      bw.put_bits(data[pos], 8);
      if (pos + 4 <= data.size()) {
        const std::uint32_t h = hash4(data.data() + pos);
        prev[pos] = head[h];
        head[h] = static_cast<std::int64_t>(pos);
      }
      ++pos;
    }
  }

  std::vector<std::uint8_t> out = header.take();
  const std::vector<std::uint8_t> payload = bw.finish();
  if (payload.size() >= data.size()) {
    // Stored mode: incompressible input is carried verbatim, so the output
    // never exceeds input + header + 1.
    out.push_back(0);  // mode: stored
    out.insert(out.end(), data.begin(), data.end());
  } else {
    out.push_back(1);  // mode: LZ tokens
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

std::vector<std::uint8_t> lz_decompress(
    const std::vector<std::uint8_t>& compressed) {
  ByteReader hr(compressed);
  if (hr.get_u32() != kMagic) throw DecodeError("lz: bad magic");
  const auto size = static_cast<std::size_t>(hr.get_varint());
  const std::uint8_t mode = hr.get_u8();
  const std::size_t header_bytes = compressed.size() - hr.remaining();
  if (mode == 0) {
    if (hr.remaining() < size) throw DecodeError("lz: truncated stored data");
    ByteReader body(compressed);
    // Skip the header again through the byte API.
    body.get_u32();
    body.get_varint();
    body.get_u8();
    return body.get_bytes(size);
  }
  if (mode != 1) throw DecodeError("lz: bad mode");

  std::vector<std::uint8_t> out;
  out.reserve(size);
  BitReader br(compressed, header_bytes);
  while (out.size() < size) {
    if (br.get_bit()) {
      const std::size_t len =
          static_cast<std::size_t>(br.get_ue()) + kMinMatch;
      const std::size_t dist = static_cast<std::size_t>(br.get_ue()) + 1;
      if (dist > out.size() || out.size() + len > size + kMaxMatch) {
        throw DecodeError("lz: bad match token");
      }
      // Byte-by-byte copy supports overlapping matches (RLE-style).
      const std::size_t start = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(out[start + i]);
      }
    } else {
      out.push_back(static_cast<std::uint8_t>(br.get_bits(8)));
    }
  }
  if (out.size() != size) throw DecodeError("lz: size mismatch");
  return out;
}

}  // namespace bees::util
