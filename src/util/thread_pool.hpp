// Minimal fixed-size thread pool with a parallel_for helper.  The heaviest
// client-side computation in BEES is the IBRD pairwise-similarity graph
// (O(n^2) descriptor matchings per batch); build_similarity_graph_parallel
// spreads it across cores.  Deterministic: the work partition is static,
// so results are identical to the serial path.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bees::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it may run on any worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  If any task threw,
  /// rethrows the first captured exception.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Runs fn(begin, end) for each contiguous chunk of [0, n) across the
  /// pool, blocking until done.  One chunk goes to each worker; `grain`
  /// sets a minimum chunk length for cheap iterations (0 = no minimum).
  /// The partition depends only on n, thread_count() and grain — never on
  /// runtime timing — so results match the serial path exactly.  Chunk
  /// granularity lets callers hoist per-worker state (e.g. a
  /// feat::MatchWorkspace) out of the per-index loop.
  template <typename Fn>
  void parallel_for_chunks(std::size_t n, Fn&& fn, std::size_t grain = 0) {
    if (n == 0) return;
    const std::size_t chunks = std::min(n, thread_count());
    std::size_t per_chunk = (n + chunks - 1) / chunks;
    if (grain > 1) per_chunk = std::max(per_chunk, grain);
    for (std::size_t begin = 0; begin < n; begin += per_chunk) {
      const std::size_t end = std::min(begin + per_chunk, n);
      submit([begin, end, &fn] { fn(begin, end); });
    }
    wait_idle();
  }

  /// Runs fn(i) for i in [0, n) across the pool, blocking until done.
  /// Same deterministic partition as parallel_for_chunks.  The callable is
  /// invoked directly (no std::function indirection), letting the compiler
  /// inline per-index bodies.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
    parallel_for_chunks(
        n,
        [&fn](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        },
        grain);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace bees::util
