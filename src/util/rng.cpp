#include "util/rng.hpp"

#include <cmath>

namespace bees::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors;
  // this avoids the all-zero state for any input seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform; cache the second variate.
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double rate) noexcept {
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>(next_u64() % n);
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  // Mix the salt with fresh parent entropy so that distinct salts give
  // independent streams even for consecutive integers.
  std::uint64_t mix = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(mix);
}

}  // namespace bees::util
