// Bit-level writer/reader with Exp-Golomb integer codes (MSB-first).
// Shared by the JPEG-style image codec and the LZ77 byte compressor.
#pragma once

#include <cstdint>
#include <vector>

#include "util/byte_io.hpp"

namespace bees::util {

/// Append-only bit writer.
class BitWriter {
 public:
  void put_bit(bool b);
  /// Writes the `n` low bits of `v`, most significant first (n <= 64).
  void put_bits(std::uint64_t v, int n);
  /// Unsigned Exp-Golomb code.
  void put_ue(std::uint64_t v);
  /// Signed Exp-Golomb code (0, 1, -1, 2, -2, ... mapping).
  void put_se(std::int64_t v);
  /// Flushes the partial byte (zero-padded) and returns the buffer.
  std::vector<std::uint8_t> finish();

  std::size_t bit_count() const noexcept { return bits_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint8_t cur_ = 0;
  int cur_bits_ = 0;
  std::size_t bits_ = 0;
};

/// Sequential bit reader matching BitWriter.  Throws util::DecodeError
/// past the end of the buffer.
class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& buf,
                     std::size_t start_byte = 0)
      : buf_(buf), pos_(start_byte * 8) {}

  bool get_bit();
  std::uint64_t get_bits(int n);
  std::uint64_t get_ue();
  std::int64_t get_se();

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_;  // in bits
};

}  // namespace bees::util
