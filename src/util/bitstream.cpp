#include "util/bitstream.hpp"

namespace bees::util {

void BitWriter::put_bit(bool b) {
  cur_ = static_cast<std::uint8_t>((cur_ << 1) | (b ? 1 : 0));
  if (++cur_bits_ == 8) {
    buf_.push_back(cur_);
    cur_ = 0;
    cur_bits_ = 0;
  }
  ++bits_;
}

void BitWriter::put_bits(std::uint64_t v, int n) {
  for (int i = n - 1; i >= 0; --i) put_bit((v >> i) & 1);
}

void BitWriter::put_ue(std::uint64_t v) {
  // Exp-Golomb: code (v+1) with as many leading zeros as its bit length
  // minus one.
  const std::uint64_t code = v + 1;
  int len = 0;
  for (std::uint64_t t = code; t > 1; t >>= 1) ++len;
  for (int i = 0; i < len; ++i) put_bit(false);
  put_bits(code, len + 1);
}

void BitWriter::put_se(std::int64_t v) {
  const std::uint64_t mapped = v > 0 ? static_cast<std::uint64_t>(v) * 2 - 1
                                     : static_cast<std::uint64_t>(-v) * 2;
  put_ue(mapped);
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (cur_bits_ > 0) {
    cur_ = static_cast<std::uint8_t>(cur_ << (8 - cur_bits_));
    buf_.push_back(cur_);
    cur_ = 0;
    cur_bits_ = 0;
  }
  return std::move(buf_);
}

bool BitReader::get_bit() {
  const std::size_t byte = pos_ / 8;
  if (byte >= buf_.size()) throw DecodeError("BitReader: past end");
  const bool b = (buf_[byte] >> (7 - pos_ % 8)) & 1;
  ++pos_;
  return b;
}

std::uint64_t BitReader::get_bits(int n) {
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) v = (v << 1) | (get_bit() ? 1 : 0);
  return v;
}

std::uint64_t BitReader::get_ue() {
  int zeros = 0;
  while (!get_bit()) {
    if (++zeros > 63) throw DecodeError("BitReader: bad EG code");
  }
  std::uint64_t code = 1;
  for (int i = 0; i < zeros; ++i) code = (code << 1) | (get_bit() ? 1 : 0);
  return code - 1;
}

std::int64_t BitReader::get_se() {
  const std::uint64_t mapped = get_ue();
  if (mapped & 1) return static_cast<std::int64_t>((mapped + 1) / 2);
  return -static_cast<std::int64_t>(mapped / 2);
}

}  // namespace bees::util
