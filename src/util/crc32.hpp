// Forwarding shim: util::crc32 moved to util/hash.hpp when the 64-bit
// content hash joined it (both are persisted formats with shared stability
// guarantees).  Include util/hash.hpp directly in new code.
#pragma once

#include "util/hash.hpp"
