// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
// Guards the serving layer's write-ahead-log records: a torn or bit-flipped
// record must be detected at recovery time, not replayed into the index.
#pragma once

#include <cstdint>
#include <span>

namespace bees::util {

/// CRC-32 of `data`, optionally continuing from a previous value (pass the
/// prior return value as `seed` to checksum a stream in pieces).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0) noexcept;

}  // namespace bees::util
