// Minimal leveled logger.  The simulation driver logs scheme decisions at
// Debug level; benches run with Info so their stdout stays parseable.
#pragma once

#include <sstream>
#include <string>

namespace bees::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr as "[LEVEL] message".  Thread-safe at the
/// granularity of one line.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace bees::util
