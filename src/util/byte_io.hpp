// Little-endian byte buffer writer/reader.  Used for feature-set
// serialization (what the client actually sends over the simulated channel,
// so Table I space overheads are measured on real wire bytes) and for the
// JPEG-style codec bit/byte stream.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bees::util {

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f32(float v);
  void put_f64(double v);
  /// Unsigned LEB128 varint; compact for small counts.
  void put_varint(std::uint64_t v);
  void put_bytes(std::span<const std::uint8_t> bytes);
  void put_string(const std::string& s);  // varint length + bytes

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Thrown by ByteReader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sequential little-endian decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  float get_f32();
  double get_f64();
  std::uint64_t get_varint();
  /// Copies `n` bytes out; throws DecodeError if fewer remain.
  std::vector<std::uint8_t> get_bytes(std::size_t n);
  std::string get_string();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace bees::util
