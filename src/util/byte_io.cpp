#include "util/byte_io.hpp"

#include <cstring>

namespace bees::util {

void ByteWriter::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v));
  put_u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v));
  put_u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::put_f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u32(bits);
}

void ByteWriter::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::put_string(const std::string& s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) throw DecodeError("ByteReader: truncated input");
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  const auto lo = get_u8();
  const auto hi = get_u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::get_u32() {
  const std::uint32_t lo = get_u16();
  const std::uint32_t hi = get_u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::get_u64() {
  const std::uint64_t lo = get_u32();
  const std::uint64_t hi = get_u32();
  return lo | (hi << 32);
}

float ByteReader::get_f32() {
  const std::uint32_t bits = get_u32();
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double ByteReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t result = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = get_u8();
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return result;
    shift += 7;
    if (shift >= 64) throw DecodeError("ByteReader: varint overflow");
  }
}

std::vector<std::uint8_t> ByteReader::get_bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::get_string() {
  const auto n = static_cast<std::size_t>(get_varint());
  require(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace bees::util
