#include "util/thread_pool.hpp"

#include <algorithm>

namespace bees::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      std::scoped_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::scoped_lock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace bees::util
