#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bees::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<long>(t * static_cast<double>(counts_.size()));
  i = std::clamp<long>(i, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  samples_.push_back(x);
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

double Histogram::fraction_above(double x) const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t above = 0;
  for (double s : samples_) {
    if (s > x) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 matched points");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double ymean = sy / n;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace bees::util
