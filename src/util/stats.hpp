// Descriptive statistics used throughout the benchmark harness: running
// moments, percentiles, histograms, and simple least-squares fits (the paper
// argues energy-vs-compression is approximately linear; we test that claim).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bees::util {

/// Online mean/variance accumulator (Welford's algorithm).  O(1) memory,
/// numerically stable; suitable for million-sample simulation streams.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear interpolation percentile of `values` at `p` in [0, 1].
/// The input is copied and sorted; returns 0 for an empty input.
double percentile(std::vector<double> values, double p);

/// Mean of `values`; 0 for an empty input.
double mean_of(const std::vector<double>& values);

/// Equal-width histogram over [lo, hi] with `bins` buckets.  Values outside
/// the range are clamped into the first/last bucket.  Used for the Fig. 4
/// similarity-distribution experiment.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Fraction of samples strictly greater than `x` — the paper's
  /// "similarity of P% of pairs is larger than x" statistic.
  double fraction_above(double x) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::vector<double> samples_;  // retained for exact fraction_above
  std::size_t total_ = 0;
};

/// Result of an ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means perfectly linear.
  double r_squared = 0.0;
};

/// Fits a line to (x, y) pairs.  Requires xs.size() == ys.size() >= 2.
LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys);

}  // namespace bees::util
