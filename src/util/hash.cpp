#include "util/hash.hpp"

#include <array>

namespace bees::util {

namespace {

/// Byte-at-a-time lookup table for the reflected IEEE polynomial.
std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t content_hash64(std::span<const std::uint8_t> data,
                             std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (const std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace bees::util
