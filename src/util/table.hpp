// Fixed-width table and CSV emission for the benchmark harness.  Every bench
// binary prints the rows/series of one paper table or figure through this
// printer so the output format is uniform and machine-parseable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace bees::util {

/// Accumulates rows of stringly-typed cells and renders either an aligned
/// ASCII table (for humans) or CSV (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Formats a value as a percentage string, e.g. 12.3%.
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by the bench binaries, e.g.
/// "=== Figure 7: Energy overhead ===".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace bees::util
