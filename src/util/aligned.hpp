// Over-aligned heap buffer for SIMD lane storage.  std::vector<T> only
// guarantees alignof(T); the packed descriptor lanes need 32-byte alignment
// so AVX2 loads never take the unaligned path.  The buffer is
// resize-without-preserve (callers rewrite contents on every assign), which
// keeps reallocation a plain aligned new.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>

namespace bees::util {

template <typename T, std::size_t Align>
class AlignedBuffer {
  static_assert(std::is_trivial_v<T>,
                "AlignedBuffer holds trivially copyable lane words only");
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { release(); }

  AlignedBuffer(const AlignedBuffer& other) { copy_from(other); }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = other.capacity_ = 0;
    }
    return *this;
  }

  /// Ensures room for `n` elements; contents are NOT preserved across a
  /// reallocation (callers rewrite the buffer after every resize).
  void resize(std::size_t n) {
    if (n > capacity_) {
      release();
      data_ = static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t(Align)));
      capacity_ = n;
    }
    size_ = n;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(Align));
      data_ = nullptr;
    }
    size_ = capacity_ = 0;
  }
  void copy_from(const AlignedBuffer& other) {
    resize(other.size_);
    for (std::size_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace bees::util
