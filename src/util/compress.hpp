// General-purpose lossless byte compression: greedy LZ77 over a 64 KiB
// window with hash-chain match search and Exp-Golomb-coded tokens.  Used to
// shrink feature payloads before they ride the bandwidth-constrained
// channel (an extension beyond the paper — evaluated in
// bench/ablation_feature_compression) and usable on any byte stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bees::util {

/// Compresses `data`; the output always round-trips through
/// lz_decompress.  Incompressible input grows by a small header plus ~1
/// bit per byte of literal overhead.
std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> data);

/// Inverse of lz_compress.  Throws DecodeError on malformed input.
std::vector<std::uint8_t> lz_decompress(
    const std::vector<std::uint8_t>& compressed);

}  // namespace bees::util
