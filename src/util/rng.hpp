// Deterministic pseudo-random number generation for simulation and workload
// synthesis.  Every stochastic component of the repository (scene generator,
// channel fluctuation, LSH bit sampling, ...) draws from an explicitly seeded
// Rng so that experiments are reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <vector>

namespace bees::util {

/// SplitMix64: used to expand a single 64-bit seed into a full xoshiro state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG (Blackman & Vigna).  Small, fast, and statistically
/// strong enough for workload synthesis and Monte-Carlo simulation.
class Rng {
 public:
  /// Constructs a generator whose entire stream is determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// True with probability `p` (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Pareto-distributed value with scale `xm` > 0 and shape `alpha` > 0.
  /// Used for heavy-tailed spatial densities (Paris-like imageset).
  double pareto(double xm, double alpha) noexcept;

  /// Uniformly random index in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Derives an independent child generator; the child stream is a pure
  /// function of (parent seed, salt), so subsystems can be re-seeded
  /// independently of call order.
  Rng fork(std::uint64_t salt) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bees::util
