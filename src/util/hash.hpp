// Stable hashes over byte spans: CRC-32 and a 64-bit content hash.
//
// STABILITY GUARANTEE: both functions here are *persisted formats*, not
// implementation details.  Chunk keys in segment-store files, WAL manifest
// frames, and wire-level chunk manifests all embed their outputs, so a store
// written today must hash identically forever.  Neither function may change
// output for any input, ever; if a better hash is needed it must be added
// under a new name (and a new segment-format version).  Golden-value tests
// in tests/util/test_hash.cpp lock the exact outputs.
//
//   crc32          — CRC-32, IEEE 802.3 reflected polynomial 0xEDB88320,
//                    init/xorout 0xFFFFFFFF (the zlib/PNG variant).
//                    Check value: crc32("123456789") == 0xCBF43926.
//   content_hash64 — FNV-1a, 64-bit: offset basis 0xcbf29ce484222325,
//                    prime 0x100000001b3, one multiply-xor per byte.
//                    Check value: content_hash64("foobar") ==
//                    0x85944171f73967e8.
//
// A chunk is addressed by the triple (content_hash64, crc32, size): the two
// hashes use unrelated mixing structures, so a colliding pair of distinct
// chunks would have to defeat both simultaneously at equal length.  Both are
// byte-order independent (pure byte streams), so keys agree across
// architectures.
#pragma once

#include <cstdint>
#include <span>

namespace bees::util {

/// CRC-32 of `data`, optionally continuing from a previous value (pass the
/// prior return value as `seed` to checksum a stream in pieces).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0) noexcept;

/// FNV-1a offset basis: content_hash64 of an empty span.
inline constexpr std::uint64_t kContentHashSeed = 0xcbf29ce484222325ull;

/// 64-bit FNV-1a content hash of `data`.  Chain a stream in pieces by
/// passing the prior return value as `seed`; the result equals hashing the
/// concatenation in one call.
std::uint64_t content_hash64(std::span<const std::uint8_t> data,
                             std::uint64_t seed = kContentHashSeed) noexcept;

}  // namespace bees::util
