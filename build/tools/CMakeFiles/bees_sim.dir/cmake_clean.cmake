file(REMOVE_RECURSE
  "CMakeFiles/bees_sim.dir/bees_sim.cpp.o"
  "CMakeFiles/bees_sim.dir/bees_sim.cpp.o.d"
  "bees_sim"
  "bees_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
