# Empty dependencies file for bees_sim.
# This may be replaced when dependencies are built.
