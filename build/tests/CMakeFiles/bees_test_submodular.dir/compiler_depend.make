# Empty compiler generated dependencies file for bees_test_submodular.
# This may be replaced when dependencies are built.
