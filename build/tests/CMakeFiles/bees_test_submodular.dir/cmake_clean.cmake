file(REMOVE_RECURSE
  "CMakeFiles/bees_test_submodular.dir/submodular/test_graph.cpp.o"
  "CMakeFiles/bees_test_submodular.dir/submodular/test_graph.cpp.o.d"
  "CMakeFiles/bees_test_submodular.dir/submodular/test_parallel_graph.cpp.o"
  "CMakeFiles/bees_test_submodular.dir/submodular/test_parallel_graph.cpp.o.d"
  "CMakeFiles/bees_test_submodular.dir/submodular/test_ssmm.cpp.o"
  "CMakeFiles/bees_test_submodular.dir/submodular/test_ssmm.cpp.o.d"
  "bees_test_submodular"
  "bees_test_submodular.pdb"
  "bees_test_submodular[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_test_submodular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
