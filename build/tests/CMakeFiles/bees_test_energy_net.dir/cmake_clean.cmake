file(REMOVE_RECURSE
  "CMakeFiles/bees_test_energy_net.dir/energy_net/test_adaptive.cpp.o"
  "CMakeFiles/bees_test_energy_net.dir/energy_net/test_adaptive.cpp.o.d"
  "CMakeFiles/bees_test_energy_net.dir/energy_net/test_battery.cpp.o"
  "CMakeFiles/bees_test_energy_net.dir/energy_net/test_battery.cpp.o.d"
  "CMakeFiles/bees_test_energy_net.dir/energy_net/test_channel.cpp.o"
  "CMakeFiles/bees_test_energy_net.dir/energy_net/test_channel.cpp.o.d"
  "CMakeFiles/bees_test_energy_net.dir/energy_net/test_cost_model.cpp.o"
  "CMakeFiles/bees_test_energy_net.dir/energy_net/test_cost_model.cpp.o.d"
  "bees_test_energy_net"
  "bees_test_energy_net.pdb"
  "bees_test_energy_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_test_energy_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
