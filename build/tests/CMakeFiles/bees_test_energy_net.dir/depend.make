# Empty dependencies file for bees_test_energy_net.
# This may be replaced when dependencies are built.
