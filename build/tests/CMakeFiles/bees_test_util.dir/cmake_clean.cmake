file(REMOVE_RECURSE
  "CMakeFiles/bees_test_util.dir/util/test_bitstream.cpp.o"
  "CMakeFiles/bees_test_util.dir/util/test_bitstream.cpp.o.d"
  "CMakeFiles/bees_test_util.dir/util/test_byte_io.cpp.o"
  "CMakeFiles/bees_test_util.dir/util/test_byte_io.cpp.o.d"
  "CMakeFiles/bees_test_util.dir/util/test_compress.cpp.o"
  "CMakeFiles/bees_test_util.dir/util/test_compress.cpp.o.d"
  "CMakeFiles/bees_test_util.dir/util/test_log.cpp.o"
  "CMakeFiles/bees_test_util.dir/util/test_log.cpp.o.d"
  "CMakeFiles/bees_test_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/bees_test_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/bees_test_util.dir/util/test_stats.cpp.o"
  "CMakeFiles/bees_test_util.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/bees_test_util.dir/util/test_table.cpp.o"
  "CMakeFiles/bees_test_util.dir/util/test_table.cpp.o.d"
  "CMakeFiles/bees_test_util.dir/util/test_thread_pool.cpp.o"
  "CMakeFiles/bees_test_util.dir/util/test_thread_pool.cpp.o.d"
  "bees_test_util"
  "bees_test_util.pdb"
  "bees_test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
