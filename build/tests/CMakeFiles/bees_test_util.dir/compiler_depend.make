# Empty compiler generated dependencies file for bees_test_util.
# This may be replaced when dependencies are built.
