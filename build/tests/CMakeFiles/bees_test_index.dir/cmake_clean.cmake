file(REMOVE_RECURSE
  "CMakeFiles/bees_test_index.dir/index/test_feature_index.cpp.o"
  "CMakeFiles/bees_test_index.dir/index/test_feature_index.cpp.o.d"
  "CMakeFiles/bees_test_index.dir/index/test_lsh.cpp.o"
  "CMakeFiles/bees_test_index.dir/index/test_lsh.cpp.o.d"
  "CMakeFiles/bees_test_index.dir/index/test_minhash.cpp.o"
  "CMakeFiles/bees_test_index.dir/index/test_minhash.cpp.o.d"
  "CMakeFiles/bees_test_index.dir/index/test_persistence.cpp.o"
  "CMakeFiles/bees_test_index.dir/index/test_persistence.cpp.o.d"
  "CMakeFiles/bees_test_index.dir/index/test_serialize.cpp.o"
  "CMakeFiles/bees_test_index.dir/index/test_serialize.cpp.o.d"
  "CMakeFiles/bees_test_index.dir/index/test_vocabulary.cpp.o"
  "CMakeFiles/bees_test_index.dir/index/test_vocabulary.cpp.o.d"
  "bees_test_index"
  "bees_test_index.pdb"
  "bees_test_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_test_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
