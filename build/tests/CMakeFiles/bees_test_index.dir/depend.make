# Empty dependencies file for bees_test_index.
# This may be replaced when dependencies are built.
