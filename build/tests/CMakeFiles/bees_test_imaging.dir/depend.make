# Empty dependencies file for bees_test_imaging.
# This may be replaced when dependencies are built.
