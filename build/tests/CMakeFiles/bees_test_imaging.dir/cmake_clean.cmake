file(REMOVE_RECURSE
  "CMakeFiles/bees_test_imaging.dir/imaging/test_codec.cpp.o"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_codec.cpp.o.d"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_codec_lossless.cpp.o"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_codec_lossless.cpp.o.d"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_image.cpp.o"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_image.cpp.o.d"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_ppm_io.cpp.o"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_ppm_io.cpp.o.d"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_quality.cpp.o"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_quality.cpp.o.d"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_synth.cpp.o"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_synth.cpp.o.d"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_transform.cpp.o"
  "CMakeFiles/bees_test_imaging.dir/imaging/test_transform.cpp.o.d"
  "bees_test_imaging"
  "bees_test_imaging.pdb"
  "bees_test_imaging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_test_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
