# Empty compiler generated dependencies file for bees_test_features.
# This may be replaced when dependencies are built.
