file(REMOVE_RECURSE
  "CMakeFiles/bees_test_features.dir/features/test_fast.cpp.o"
  "CMakeFiles/bees_test_features.dir/features/test_fast.cpp.o.d"
  "CMakeFiles/bees_test_features.dir/features/test_global.cpp.o"
  "CMakeFiles/bees_test_features.dir/features/test_global.cpp.o.d"
  "CMakeFiles/bees_test_features.dir/features/test_matching.cpp.o"
  "CMakeFiles/bees_test_features.dir/features/test_matching.cpp.o.d"
  "CMakeFiles/bees_test_features.dir/features/test_orb.cpp.o"
  "CMakeFiles/bees_test_features.dir/features/test_orb.cpp.o.d"
  "CMakeFiles/bees_test_features.dir/features/test_pca.cpp.o"
  "CMakeFiles/bees_test_features.dir/features/test_pca.cpp.o.d"
  "CMakeFiles/bees_test_features.dir/features/test_sift.cpp.o"
  "CMakeFiles/bees_test_features.dir/features/test_sift.cpp.o.d"
  "CMakeFiles/bees_test_features.dir/features/test_similarity.cpp.o"
  "CMakeFiles/bees_test_features.dir/features/test_similarity.cpp.o.d"
  "bees_test_features"
  "bees_test_features.pdb"
  "bees_test_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_test_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
