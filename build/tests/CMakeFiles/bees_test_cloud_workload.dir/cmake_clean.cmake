file(REMOVE_RECURSE
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_burst.cpp.o"
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_burst.cpp.o.d"
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_image_store.cpp.o"
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_image_store.cpp.o.d"
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_imageset.cpp.o"
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_imageset.cpp.o.d"
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_rpc.cpp.o"
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_rpc.cpp.o.d"
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_server.cpp.o"
  "CMakeFiles/bees_test_cloud_workload.dir/cloud_workload/test_server.cpp.o.d"
  "bees_test_cloud_workload"
  "bees_test_cloud_workload.pdb"
  "bees_test_cloud_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_test_cloud_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
