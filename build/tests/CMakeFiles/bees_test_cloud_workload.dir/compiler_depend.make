# Empty compiler generated dependencies file for bees_test_cloud_workload.
# This may be replaced when dependencies are built.
