file(REMOVE_RECURSE
  "CMakeFiles/bees_test_core.dir/core/test_accounting.cpp.o"
  "CMakeFiles/bees_test_core.dir/core/test_accounting.cpp.o.d"
  "CMakeFiles/bees_test_core.dir/core/test_bees_pipeline.cpp.o"
  "CMakeFiles/bees_test_core.dir/core/test_bees_pipeline.cpp.o.d"
  "CMakeFiles/bees_test_core.dir/core/test_photonet.cpp.o"
  "CMakeFiles/bees_test_core.dir/core/test_photonet.cpp.o.d"
  "CMakeFiles/bees_test_core.dir/core/test_schemes.cpp.o"
  "CMakeFiles/bees_test_core.dir/core/test_schemes.cpp.o.d"
  "CMakeFiles/bees_test_core.dir/core/test_simulation.cpp.o"
  "CMakeFiles/bees_test_core.dir/core/test_simulation.cpp.o.d"
  "bees_test_core"
  "bees_test_core.pdb"
  "bees_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
