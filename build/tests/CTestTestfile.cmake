# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bees_test_util[1]_include.cmake")
include("/root/repo/build/tests/bees_test_imaging[1]_include.cmake")
include("/root/repo/build/tests/bees_test_features[1]_include.cmake")
include("/root/repo/build/tests/bees_test_index[1]_include.cmake")
include("/root/repo/build/tests/bees_test_submodular[1]_include.cmake")
include("/root/repo/build/tests/bees_test_energy_net[1]_include.cmake")
include("/root/repo/build/tests/bees_test_cloud_workload[1]_include.cmake")
include("/root/repo/build/tests/bees_test_core[1]_include.cmake")
