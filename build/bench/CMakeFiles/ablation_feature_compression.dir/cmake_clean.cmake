file(REMOVE_RECURSE
  "CMakeFiles/ablation_feature_compression.dir/ablation_feature_compression.cpp.o"
  "CMakeFiles/ablation_feature_compression.dir/ablation_feature_compression.cpp.o.d"
  "ablation_feature_compression"
  "ablation_feature_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feature_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
