file(REMOVE_RECURSE
  "CMakeFiles/ablation_minhash.dir/ablation_minhash.cpp.o"
  "CMakeFiles/ablation_minhash.dir/ablation_minhash.cpp.o.d"
  "ablation_minhash"
  "ablation_minhash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_minhash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
