# Empty compiler generated dependencies file for ablation_minhash.
# This may be replaced when dependencies are built.
