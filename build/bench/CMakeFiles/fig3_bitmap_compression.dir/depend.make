# Empty dependencies file for fig3_bitmap_compression.
# This may be replaced when dependencies are built.
