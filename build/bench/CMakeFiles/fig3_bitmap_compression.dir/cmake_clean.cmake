file(REMOVE_RECURSE
  "CMakeFiles/fig3_bitmap_compression.dir/fig3_bitmap_compression.cpp.o"
  "CMakeFiles/fig3_bitmap_compression.dir/fig3_bitmap_compression.cpp.o.d"
  "fig3_bitmap_compression"
  "fig3_bitmap_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_bitmap_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
