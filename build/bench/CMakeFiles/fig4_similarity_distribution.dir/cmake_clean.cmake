file(REMOVE_RECURSE
  "CMakeFiles/fig4_similarity_distribution.dir/fig4_similarity_distribution.cpp.o"
  "CMakeFiles/fig4_similarity_distribution.dir/fig4_similarity_distribution.cpp.o.d"
  "fig4_similarity_distribution"
  "fig4_similarity_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_similarity_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
