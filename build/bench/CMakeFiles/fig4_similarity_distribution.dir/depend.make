# Empty dependencies file for fig4_similarity_distribution.
# This may be replaced when dependencies are built.
