# Empty dependencies file for fig12_coverage.
# This may be replaced when dependencies are built.
