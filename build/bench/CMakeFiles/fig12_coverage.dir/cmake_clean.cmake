file(REMOVE_RECURSE
  "CMakeFiles/fig12_coverage.dir/fig12_coverage.cpp.o"
  "CMakeFiles/fig12_coverage.dir/fig12_coverage.cpp.o.d"
  "fig12_coverage"
  "fig12_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
