# Empty dependencies file for fig6_precision.
# This may be replaced when dependencies are built.
