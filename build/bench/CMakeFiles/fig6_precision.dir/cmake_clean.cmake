file(REMOVE_RECURSE
  "CMakeFiles/fig6_precision.dir/fig6_precision.cpp.o"
  "CMakeFiles/fig6_precision.dir/fig6_precision.cpp.o.d"
  "fig6_precision"
  "fig6_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
