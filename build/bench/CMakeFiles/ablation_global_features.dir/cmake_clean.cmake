file(REMOVE_RECURSE
  "CMakeFiles/ablation_global_features.dir/ablation_global_features.cpp.o"
  "CMakeFiles/ablation_global_features.dir/ablation_global_features.cpp.o.d"
  "ablation_global_features"
  "ablation_global_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_global_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
