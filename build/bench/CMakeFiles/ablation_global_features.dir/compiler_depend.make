# Empty compiler generated dependencies file for ablation_global_features.
# This may be replaced when dependencies are built.
