# Empty dependencies file for fig11_upload_delay.
# This may be replaced when dependencies are built.
