
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_ssmm.cpp" "bench/CMakeFiles/ablation_ssmm.dir/ablation_ssmm.cpp.o" "gcc" "bench/CMakeFiles/ablation_ssmm.dir/ablation_ssmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bees_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/bees_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bees_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/submodular/CMakeFiles/bees_submodular.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bees_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/bees_index.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/bees_features.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/bees_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
