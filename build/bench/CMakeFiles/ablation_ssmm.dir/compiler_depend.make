# Empty compiler generated dependencies file for ablation_ssmm.
# This may be replaced when dependencies are built.
