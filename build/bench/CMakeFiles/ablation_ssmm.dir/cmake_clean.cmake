file(REMOVE_RECURSE
  "CMakeFiles/ablation_ssmm.dir/ablation_ssmm.cpp.o"
  "CMakeFiles/ablation_ssmm.dir/ablation_ssmm.cpp.o.d"
  "ablation_ssmm"
  "ablation_ssmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ssmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
