# Empty compiler generated dependencies file for table1_space_overhead.
# This may be replaced when dependencies are built.
