# Empty compiler generated dependencies file for fig8_energy_adaptation.
# This may be replaced when dependencies are built.
