file(REMOVE_RECURSE
  "CMakeFiles/fig8_energy_adaptation.dir/fig8_energy_adaptation.cpp.o"
  "CMakeFiles/fig8_energy_adaptation.dir/fig8_energy_adaptation.cpp.o.d"
  "fig8_energy_adaptation"
  "fig8_energy_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_energy_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
