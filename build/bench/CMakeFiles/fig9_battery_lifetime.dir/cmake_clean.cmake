file(REMOVE_RECURSE
  "CMakeFiles/fig9_battery_lifetime.dir/fig9_battery_lifetime.cpp.o"
  "CMakeFiles/fig9_battery_lifetime.dir/fig9_battery_lifetime.cpp.o.d"
  "fig9_battery_lifetime"
  "fig9_battery_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_battery_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
