# Empty dependencies file for fig9_battery_lifetime.
# This may be replaced when dependencies are built.
