# Empty compiler generated dependencies file for ablation_vocabulary.
# This may be replaced when dependencies are built.
