file(REMOVE_RECURSE
  "CMakeFiles/ablation_vocabulary.dir/ablation_vocabulary.cpp.o"
  "CMakeFiles/ablation_vocabulary.dir/ablation_vocabulary.cpp.o.d"
  "ablation_vocabulary"
  "ablation_vocabulary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vocabulary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
