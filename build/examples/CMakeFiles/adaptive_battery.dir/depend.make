# Empty dependencies file for adaptive_battery.
# This may be replaced when dependencies are built.
