file(REMOVE_RECURSE
  "CMakeFiles/adaptive_battery.dir/adaptive_battery.cpp.o"
  "CMakeFiles/adaptive_battery.dir/adaptive_battery.cpp.o.d"
  "adaptive_battery"
  "adaptive_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
