# Empty dependencies file for image_pipeline_demo.
# This may be replaced when dependencies are built.
