file(REMOVE_RECURSE
  "CMakeFiles/image_pipeline_demo.dir/image_pipeline_demo.cpp.o"
  "CMakeFiles/image_pipeline_demo.dir/image_pipeline_demo.cpp.o.d"
  "image_pipeline_demo"
  "image_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
