
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imaging/codec.cpp" "src/imaging/CMakeFiles/bees_imaging.dir/codec.cpp.o" "gcc" "src/imaging/CMakeFiles/bees_imaging.dir/codec.cpp.o.d"
  "/root/repo/src/imaging/codec_lossless.cpp" "src/imaging/CMakeFiles/bees_imaging.dir/codec_lossless.cpp.o" "gcc" "src/imaging/CMakeFiles/bees_imaging.dir/codec_lossless.cpp.o.d"
  "/root/repo/src/imaging/image.cpp" "src/imaging/CMakeFiles/bees_imaging.dir/image.cpp.o" "gcc" "src/imaging/CMakeFiles/bees_imaging.dir/image.cpp.o.d"
  "/root/repo/src/imaging/ppm_io.cpp" "src/imaging/CMakeFiles/bees_imaging.dir/ppm_io.cpp.o" "gcc" "src/imaging/CMakeFiles/bees_imaging.dir/ppm_io.cpp.o.d"
  "/root/repo/src/imaging/quality.cpp" "src/imaging/CMakeFiles/bees_imaging.dir/quality.cpp.o" "gcc" "src/imaging/CMakeFiles/bees_imaging.dir/quality.cpp.o.d"
  "/root/repo/src/imaging/synth.cpp" "src/imaging/CMakeFiles/bees_imaging.dir/synth.cpp.o" "gcc" "src/imaging/CMakeFiles/bees_imaging.dir/synth.cpp.o.d"
  "/root/repo/src/imaging/transform.cpp" "src/imaging/CMakeFiles/bees_imaging.dir/transform.cpp.o" "gcc" "src/imaging/CMakeFiles/bees_imaging.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
