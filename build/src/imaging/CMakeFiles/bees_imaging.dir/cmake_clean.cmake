file(REMOVE_RECURSE
  "CMakeFiles/bees_imaging.dir/codec.cpp.o"
  "CMakeFiles/bees_imaging.dir/codec.cpp.o.d"
  "CMakeFiles/bees_imaging.dir/codec_lossless.cpp.o"
  "CMakeFiles/bees_imaging.dir/codec_lossless.cpp.o.d"
  "CMakeFiles/bees_imaging.dir/image.cpp.o"
  "CMakeFiles/bees_imaging.dir/image.cpp.o.d"
  "CMakeFiles/bees_imaging.dir/ppm_io.cpp.o"
  "CMakeFiles/bees_imaging.dir/ppm_io.cpp.o.d"
  "CMakeFiles/bees_imaging.dir/quality.cpp.o"
  "CMakeFiles/bees_imaging.dir/quality.cpp.o.d"
  "CMakeFiles/bees_imaging.dir/synth.cpp.o"
  "CMakeFiles/bees_imaging.dir/synth.cpp.o.d"
  "CMakeFiles/bees_imaging.dir/transform.cpp.o"
  "CMakeFiles/bees_imaging.dir/transform.cpp.o.d"
  "libbees_imaging.a"
  "libbees_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
