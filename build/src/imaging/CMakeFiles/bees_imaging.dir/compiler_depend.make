# Empty compiler generated dependencies file for bees_imaging.
# This may be replaced when dependencies are built.
