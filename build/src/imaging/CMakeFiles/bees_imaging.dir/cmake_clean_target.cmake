file(REMOVE_RECURSE
  "libbees_imaging.a"
)
