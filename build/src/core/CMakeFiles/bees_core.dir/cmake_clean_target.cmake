file(REMOVE_RECURSE
  "libbees_core.a"
)
