file(REMOVE_RECURSE
  "CMakeFiles/bees_core.dir/baselines.cpp.o"
  "CMakeFiles/bees_core.dir/baselines.cpp.o.d"
  "CMakeFiles/bees_core.dir/bees.cpp.o"
  "CMakeFiles/bees_core.dir/bees.cpp.o.d"
  "CMakeFiles/bees_core.dir/photonet.cpp.o"
  "CMakeFiles/bees_core.dir/photonet.cpp.o.d"
  "CMakeFiles/bees_core.dir/scheme.cpp.o"
  "CMakeFiles/bees_core.dir/scheme.cpp.o.d"
  "CMakeFiles/bees_core.dir/simulation.cpp.o"
  "CMakeFiles/bees_core.dir/simulation.cpp.o.d"
  "libbees_core.a"
  "libbees_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
