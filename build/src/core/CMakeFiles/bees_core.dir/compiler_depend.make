# Empty compiler generated dependencies file for bees_core.
# This may be replaced when dependencies are built.
