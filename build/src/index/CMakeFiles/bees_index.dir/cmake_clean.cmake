file(REMOVE_RECURSE
  "CMakeFiles/bees_index.dir/feature_index.cpp.o"
  "CMakeFiles/bees_index.dir/feature_index.cpp.o.d"
  "CMakeFiles/bees_index.dir/lsh.cpp.o"
  "CMakeFiles/bees_index.dir/lsh.cpp.o.d"
  "CMakeFiles/bees_index.dir/minhash.cpp.o"
  "CMakeFiles/bees_index.dir/minhash.cpp.o.d"
  "CMakeFiles/bees_index.dir/persistence.cpp.o"
  "CMakeFiles/bees_index.dir/persistence.cpp.o.d"
  "CMakeFiles/bees_index.dir/serialize.cpp.o"
  "CMakeFiles/bees_index.dir/serialize.cpp.o.d"
  "CMakeFiles/bees_index.dir/vocabulary.cpp.o"
  "CMakeFiles/bees_index.dir/vocabulary.cpp.o.d"
  "libbees_index.a"
  "libbees_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
