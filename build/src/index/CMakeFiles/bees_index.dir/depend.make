# Empty dependencies file for bees_index.
# This may be replaced when dependencies are built.
