
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/feature_index.cpp" "src/index/CMakeFiles/bees_index.dir/feature_index.cpp.o" "gcc" "src/index/CMakeFiles/bees_index.dir/feature_index.cpp.o.d"
  "/root/repo/src/index/lsh.cpp" "src/index/CMakeFiles/bees_index.dir/lsh.cpp.o" "gcc" "src/index/CMakeFiles/bees_index.dir/lsh.cpp.o.d"
  "/root/repo/src/index/minhash.cpp" "src/index/CMakeFiles/bees_index.dir/minhash.cpp.o" "gcc" "src/index/CMakeFiles/bees_index.dir/minhash.cpp.o.d"
  "/root/repo/src/index/persistence.cpp" "src/index/CMakeFiles/bees_index.dir/persistence.cpp.o" "gcc" "src/index/CMakeFiles/bees_index.dir/persistence.cpp.o.d"
  "/root/repo/src/index/serialize.cpp" "src/index/CMakeFiles/bees_index.dir/serialize.cpp.o" "gcc" "src/index/CMakeFiles/bees_index.dir/serialize.cpp.o.d"
  "/root/repo/src/index/vocabulary.cpp" "src/index/CMakeFiles/bees_index.dir/vocabulary.cpp.o" "gcc" "src/index/CMakeFiles/bees_index.dir/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/bees_features.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bees_util.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/bees_imaging.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
