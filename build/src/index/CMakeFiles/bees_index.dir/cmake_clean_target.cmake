file(REMOVE_RECURSE
  "libbees_index.a"
)
