file(REMOVE_RECURSE
  "CMakeFiles/bees_features.dir/fast.cpp.o"
  "CMakeFiles/bees_features.dir/fast.cpp.o.d"
  "CMakeFiles/bees_features.dir/global.cpp.o"
  "CMakeFiles/bees_features.dir/global.cpp.o.d"
  "CMakeFiles/bees_features.dir/matching.cpp.o"
  "CMakeFiles/bees_features.dir/matching.cpp.o.d"
  "CMakeFiles/bees_features.dir/orb.cpp.o"
  "CMakeFiles/bees_features.dir/orb.cpp.o.d"
  "CMakeFiles/bees_features.dir/pca.cpp.o"
  "CMakeFiles/bees_features.dir/pca.cpp.o.d"
  "CMakeFiles/bees_features.dir/sift.cpp.o"
  "CMakeFiles/bees_features.dir/sift.cpp.o.d"
  "CMakeFiles/bees_features.dir/similarity.cpp.o"
  "CMakeFiles/bees_features.dir/similarity.cpp.o.d"
  "libbees_features.a"
  "libbees_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
