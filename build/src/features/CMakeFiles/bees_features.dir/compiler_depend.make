# Empty compiler generated dependencies file for bees_features.
# This may be replaced when dependencies are built.
