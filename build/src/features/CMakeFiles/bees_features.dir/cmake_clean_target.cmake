file(REMOVE_RECURSE
  "libbees_features.a"
)
