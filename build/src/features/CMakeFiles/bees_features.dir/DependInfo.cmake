
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/fast.cpp" "src/features/CMakeFiles/bees_features.dir/fast.cpp.o" "gcc" "src/features/CMakeFiles/bees_features.dir/fast.cpp.o.d"
  "/root/repo/src/features/global.cpp" "src/features/CMakeFiles/bees_features.dir/global.cpp.o" "gcc" "src/features/CMakeFiles/bees_features.dir/global.cpp.o.d"
  "/root/repo/src/features/matching.cpp" "src/features/CMakeFiles/bees_features.dir/matching.cpp.o" "gcc" "src/features/CMakeFiles/bees_features.dir/matching.cpp.o.d"
  "/root/repo/src/features/orb.cpp" "src/features/CMakeFiles/bees_features.dir/orb.cpp.o" "gcc" "src/features/CMakeFiles/bees_features.dir/orb.cpp.o.d"
  "/root/repo/src/features/pca.cpp" "src/features/CMakeFiles/bees_features.dir/pca.cpp.o" "gcc" "src/features/CMakeFiles/bees_features.dir/pca.cpp.o.d"
  "/root/repo/src/features/sift.cpp" "src/features/CMakeFiles/bees_features.dir/sift.cpp.o" "gcc" "src/features/CMakeFiles/bees_features.dir/sift.cpp.o.d"
  "/root/repo/src/features/similarity.cpp" "src/features/CMakeFiles/bees_features.dir/similarity.cpp.o" "gcc" "src/features/CMakeFiles/bees_features.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imaging/CMakeFiles/bees_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
