file(REMOVE_RECURSE
  "CMakeFiles/bees_energy.dir/battery.cpp.o"
  "CMakeFiles/bees_energy.dir/battery.cpp.o.d"
  "libbees_energy.a"
  "libbees_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
