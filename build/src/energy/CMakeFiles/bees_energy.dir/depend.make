# Empty dependencies file for bees_energy.
# This may be replaced when dependencies are built.
