file(REMOVE_RECURSE
  "libbees_energy.a"
)
