file(REMOVE_RECURSE
  "CMakeFiles/bees_submodular.dir/graph.cpp.o"
  "CMakeFiles/bees_submodular.dir/graph.cpp.o.d"
  "CMakeFiles/bees_submodular.dir/ssmm.cpp.o"
  "CMakeFiles/bees_submodular.dir/ssmm.cpp.o.d"
  "libbees_submodular.a"
  "libbees_submodular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_submodular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
