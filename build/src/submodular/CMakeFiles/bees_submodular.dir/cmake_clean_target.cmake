file(REMOVE_RECURSE
  "libbees_submodular.a"
)
