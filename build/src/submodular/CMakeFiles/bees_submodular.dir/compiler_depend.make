# Empty compiler generated dependencies file for bees_submodular.
# This may be replaced when dependencies are built.
