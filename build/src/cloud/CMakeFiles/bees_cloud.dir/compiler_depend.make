# Empty compiler generated dependencies file for bees_cloud.
# This may be replaced when dependencies are built.
