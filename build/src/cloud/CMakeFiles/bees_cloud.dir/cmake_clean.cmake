file(REMOVE_RECURSE
  "CMakeFiles/bees_cloud.dir/rpc.cpp.o"
  "CMakeFiles/bees_cloud.dir/rpc.cpp.o.d"
  "CMakeFiles/bees_cloud.dir/server.cpp.o"
  "CMakeFiles/bees_cloud.dir/server.cpp.o.d"
  "libbees_cloud.a"
  "libbees_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
