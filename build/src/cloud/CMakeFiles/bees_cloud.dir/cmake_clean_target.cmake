file(REMOVE_RECURSE
  "libbees_cloud.a"
)
