
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/rpc.cpp" "src/cloud/CMakeFiles/bees_cloud.dir/rpc.cpp.o" "gcc" "src/cloud/CMakeFiles/bees_cloud.dir/rpc.cpp.o.d"
  "/root/repo/src/cloud/server.cpp" "src/cloud/CMakeFiles/bees_cloud.dir/server.cpp.o" "gcc" "src/cloud/CMakeFiles/bees_cloud.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/bees_index.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/bees_features.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/bees_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
