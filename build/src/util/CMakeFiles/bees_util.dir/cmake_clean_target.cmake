file(REMOVE_RECURSE
  "libbees_util.a"
)
