file(REMOVE_RECURSE
  "CMakeFiles/bees_util.dir/bitstream.cpp.o"
  "CMakeFiles/bees_util.dir/bitstream.cpp.o.d"
  "CMakeFiles/bees_util.dir/byte_io.cpp.o"
  "CMakeFiles/bees_util.dir/byte_io.cpp.o.d"
  "CMakeFiles/bees_util.dir/compress.cpp.o"
  "CMakeFiles/bees_util.dir/compress.cpp.o.d"
  "CMakeFiles/bees_util.dir/log.cpp.o"
  "CMakeFiles/bees_util.dir/log.cpp.o.d"
  "CMakeFiles/bees_util.dir/rng.cpp.o"
  "CMakeFiles/bees_util.dir/rng.cpp.o.d"
  "CMakeFiles/bees_util.dir/stats.cpp.o"
  "CMakeFiles/bees_util.dir/stats.cpp.o.d"
  "CMakeFiles/bees_util.dir/table.cpp.o"
  "CMakeFiles/bees_util.dir/table.cpp.o.d"
  "CMakeFiles/bees_util.dir/thread_pool.cpp.o"
  "CMakeFiles/bees_util.dir/thread_pool.cpp.o.d"
  "libbees_util.a"
  "libbees_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
