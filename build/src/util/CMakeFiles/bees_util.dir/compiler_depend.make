# Empty compiler generated dependencies file for bees_util.
# This may be replaced when dependencies are built.
