# Empty dependencies file for bees_net.
# This may be replaced when dependencies are built.
