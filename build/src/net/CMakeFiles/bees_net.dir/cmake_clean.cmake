file(REMOVE_RECURSE
  "CMakeFiles/bees_net.dir/channel.cpp.o"
  "CMakeFiles/bees_net.dir/channel.cpp.o.d"
  "CMakeFiles/bees_net.dir/protocol.cpp.o"
  "CMakeFiles/bees_net.dir/protocol.cpp.o.d"
  "libbees_net.a"
  "libbees_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
