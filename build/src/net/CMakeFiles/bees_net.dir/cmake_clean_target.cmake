file(REMOVE_RECURSE
  "libbees_net.a"
)
