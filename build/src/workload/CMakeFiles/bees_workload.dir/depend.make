# Empty dependencies file for bees_workload.
# This may be replaced when dependencies are built.
