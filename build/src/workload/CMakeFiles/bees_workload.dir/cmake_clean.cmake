file(REMOVE_RECURSE
  "CMakeFiles/bees_workload.dir/image_store.cpp.o"
  "CMakeFiles/bees_workload.dir/image_store.cpp.o.d"
  "CMakeFiles/bees_workload.dir/imageset.cpp.o"
  "CMakeFiles/bees_workload.dir/imageset.cpp.o.d"
  "libbees_workload.a"
  "libbees_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bees_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
