file(REMOVE_RECURSE
  "libbees_workload.a"
)
